#include "src/campaign/runner.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <optional>
#include <ostream>
#include <set>
#include <stdexcept>
#include <tuple>

#include "src/characterize/characterizer.hpp"
#include "src/obs/probe.hpp"
#include "src/characterize/triads.hpp"
#include "src/fleet/fleet.hpp"
#include "src/model/vos_model.hpp"
#include "src/netlist/dut.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/seq/seq_dut.hpp"
#include "src/seq/seq_sim.hpp"
#include "src/sim/vos_dut.hpp"
#include "src/sta/synthesis_report.hpp"
#include "src/util/parallel.hpp"

namespace vosim {

namespace {

/// FNV-1a over the cell key, mixed with the campaign seed — a
/// schedule-independent per-cell seed (determinism across thread
/// counts depends on this never seeing worker identity).
std::uint64_t content_seed(std::uint64_t seed, const std::string& key) {
  std::uint64_t h = 14695981039346656037ULL ^ seed;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Everything computed once per circuit and shared by its cells.
struct CircuitContext {
  DutNetlist dut;
  double critical_path_ns = 0.0;
  std::vector<OperatingTriad> triads;
  std::vector<TriadResult> characterized;  ///< energy/BER join, per triad
  std::vector<std::optional<VosAdderModel>> models;  ///< model backend
  std::optional<SeqDut> seq;  ///< registered view, sim-seq backend only
};

bool is_adder_shaped(const DutNetlist& dut, int width) {
  return dut.num_operands() == 2 && dut.operand_width(0) == width &&
         dut.operand_width(1) == width &&
         dut.output_width() == width + 1;
}

/// Relaxation ranking of a triad: the most relaxed operating point
/// (highest Vdd, then longest clock, then least body-bias) is the
/// energy baseline — the relaxed-nominal triad on every
/// Table-III-shaped grid. Chosen by content, never by grid position,
/// so reordered or resumed grids agree on it.
std::tuple<double, double, double> relaxation_rank(
    const OperatingTriad& t) {
  return std::make_tuple(t.vdd_v, t.tclk_ns, -t.vbb_v);
}

std::size_t baseline_index(const std::vector<OperatingTriad>& triads) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < triads.size(); ++i)
    if (relaxation_rank(triads[i]) > relaxation_rank(triads[best]))
      best = i;
  return best;
}

/// The workload's input data must be identical across backends and
/// triads (deviation and Pareto compare cells at fixed stimuli), so it
/// derives from the campaign seed and the workload only.
std::uint64_t data_seed(std::uint64_t seed, const std::string& workload) {
  return content_seed(seed, "data|" + workload);
}

CircuitContext make_context(const CellLibrary& lib,
                            const CampaignConfig& config,
                            const std::string& spec, int adder_width,
                            bool needs_model, bool needs_gate_level,
                            bool needs_seq) {
  CircuitContext ctx;
  ctx.dut = build_circuit(spec);
  ctx.critical_path_ns =
      synthesize_report(ctx.dut.netlist, lib).critical_path_ns;

  if ((needs_model || needs_gate_level) &&
      !is_adder_shaped(ctx.dut, adder_width))
    throw std::invalid_argument(
        "campaign: circuit '" + spec + "' cannot back the workloads' " +
        std::to_string(adder_width) + "-bit routed adder (needs a " +
        std::to_string(adder_width) + "-bit two-operand adder)");
  if (needs_seq)
    ctx.seq = wrap_as_pipeline(ctx.dut);  // one wrap per circuit

  if (!config.triads.empty()) {
    ctx.triads = config.triads;
  } else if (!config.triad_specs.empty()) {
    for (const TriadSpec& s : config.triad_specs)
      ctx.triads.push_back(OperatingTriad{
          s.tclk_scale * ctx.critical_path_ns, s.vdd_v, s.vbb_v});
  } else {
    ctx.triads = make_circuit_triads(ctx.dut, ctx.critical_path_ns);
  }
  if (config.max_triads != 0 && ctx.triads.size() > config.max_triads)
    ctx.triads.resize(config.max_triads);
  return ctx;
}

/// Characterization and model training for one circuit — deferred
/// until the grid enumeration proves the circuit has missing cells, so
/// a fully-resumed campaign answers from the store without touching a
/// simulator. `model_triads[t]` marks the triads some pending cell
/// will actually read a model for; only those are trained (resuming a
/// finished model grid with a new cheap backend must not re-train 43
/// models nobody reads).
void prepare_context(const CellLibrary& lib, const CampaignConfig& config,
                     CircuitContext& ctx,
                     const std::vector<char>& model_triads,
                     std::ostream* progress) {
  // Gate-level energy + BER for the join, once per (circuit, triad):
  // the levelized engine collapses the whole grid into one normalized
  // timing pass.
  CharacterizeConfig ccfg;
  ccfg.num_patterns = config.characterize_patterns;
  ccfg.engine = EngineKind::kLevelized;
  ccfg.threads = config.jobs;
  if (progress != nullptr)
    *progress << "campaign: characterizing " << ctx.dut.display_name
              << " over " << ctx.triads.size() << " triads\n";
  {
    obs::ScopedSpan span("campaign.characterize", "campaign");
    span.arg("circuit", ctx.dut.display_name)
        .arg("triads", static_cast<std::uint64_t>(ctx.triads.size()));
    obs::metrics().counter("campaign.characterize.calls").add();
    ctx.characterized = characterize_dut(ctx.dut, lib, ctx.triads, ccfg);
  }

  std::vector<std::size_t> to_train;
  for (std::size_t t = 0; t < model_triads.size(); ++t)
    if (model_triads[t] != 0) to_train.push_back(t);
  if (to_train.empty()) return;
  if (progress != nullptr)
    *progress << "campaign: training " << to_train.size()
              << " models for " << ctx.dut.display_name << "\n";
  obs::ScopedSpan train_span("campaign.train", "campaign");
  train_span.arg("circuit", ctx.dut.display_name)
      .arg("models", static_cast<std::uint64_t>(to_train.size()));
  obs::metrics().counter("campaign.train.calls").add(to_train.size());
  ctx.models.resize(ctx.triads.size());
  auto& ctx_ref = ctx;
  parallel_for(
      to_train.size(),
      [&lib, &config, &ctx_ref, &to_train](std::size_t i) {
        const std::size_t t = to_train[i];
        TimingSimConfig sim_cfg;
        sim_cfg.engine = EngineKind::kLevelized;
        VosDutSim sim(ctx_ref.dut, lib, ctx_ref.triads[t], sim_cfg);
        const HardwareOracle oracle = [&sim](std::uint64_t a,
                                             std::uint64_t b) {
          return sim.apply(a, b).sampled;
        };
        TrainerConfig tcfg;
        tcfg.num_patterns = config.train_patterns;
        ctx_ref.models[t] = train_vos_model(
            ctx_ref.dut.operand_width(0), ctx_ref.triads[t], oracle,
            tcfg);
      },
      config.jobs);
}

}  // namespace

const char* arith_backend_name(ArithBackend backend) {
  switch (backend) {
    case ArithBackend::kExact: return "exact";
    case ArithBackend::kModel: return "model";
    case ArithBackend::kSimEvent: return "sim-event";
    case ArithBackend::kSimLevelized: return "sim-levelized";
    case ArithBackend::kSimSeq: return "sim-seq";
  }
  return "?";
}

ArithBackend parse_arith_backend(const std::string& name) {
  if (name == "exact") return ArithBackend::kExact;
  if (name == "model") return ArithBackend::kModel;
  if (name == "sim-event") return ArithBackend::kSimEvent;
  if (name == "sim-levelized" || name == "sim")
    return ArithBackend::kSimLevelized;
  if (name == "sim-seq") return ArithBackend::kSimSeq;
  throw std::invalid_argument(
      "unknown backend '" + name +
      "' (expected exact | model | sim-event | sim-levelized | sim-seq)");
}

CampaignOutcome run_campaign(const CellLibrary& lib,
                             const CampaignConfig& config,
                             CampaignStore& store) {
  const std::vector<Workload> workloads =
      resolve_workloads(config.workloads);
  if (config.circuits.empty())
    throw std::invalid_argument("campaign: no circuits selected");
  if (config.backends.empty())
    throw std::invalid_argument("campaign: no backends selected");
  if (config.shard_count == 0 ||
      config.shard_index >= config.shard_count)
    throw std::invalid_argument(
        "campaign: bad shard (need index < count, count >= 1)");
  // Every built-in workload routes the same adder width; the circuit
  // must expose it for the model/gate-level backends.
  const int adder_width = workloads.front().width;
  for (const Workload& w : workloads)
    if (w.width != adder_width)
      throw std::invalid_argument(
          "campaign: workloads disagree on adder width");
  bool needs_model = false;
  bool needs_gate_level = false;
  bool needs_seq = false;
  for (const ArithBackend b : config.backends) {
    needs_model = needs_model || b == ArithBackend::kModel;
    needs_gate_level = needs_gate_level || b == ArithBackend::kSimEvent ||
                       b == ArithBackend::kSimLevelized ||
                       b == ArithBackend::kSimSeq;
    needs_seq = needs_seq || b == ArithBackend::kSimSeq;
  }

  // Phase 1 — per-circuit netlist, synthesis and triad grid (the cell
  // keys need these; characterization waits until the store has been
  // consulted).
  std::vector<CircuitContext> contexts;
  contexts.reserve(config.circuits.size());
  {
    obs::ScopedSpan span("campaign.synth", "campaign");
    span.arg("circuits",
             static_cast<std::uint64_t>(config.circuits.size()));
    for (const std::string& spec : config.circuits)
      contexts.push_back(make_context(lib, config, spec, adder_width,
                                      needs_model, needs_gate_level,
                                      needs_seq));
  }

  // Phase 2 — enumerate the grid, answer finished cells from the store
  // and queue the rest.
  struct PendingCell {
    std::size_t slot;      ///< position in the outcome grid
    std::size_t workload;
    std::size_t circuit;
    std::size_t triad;
    ArithBackend backend;
    CampaignCellKey key;
  };
  // The chip axis: the nominal die alone, or fleet members 1..N.
  std::vector<std::uint64_t> chip_ids;
  if (config.fleet.num_chips == 0) {
    chip_ids.push_back(0);
  } else {
    for (std::uint64_t i = 1; i <= config.fleet.num_chips; ++i)
      chip_ids.push_back(i);
  }

  CampaignOutcome outcome;
  std::vector<PendingCell> pending;
  std::set<std::string> enumerated;  // dedup repeated axis entries
  // Store-lookup accounting: these count per lookup in the loop below,
  // so a snapshot's hit/miss exactly equals reused/computed (test_obs).
  obs::Counter& hit_counter = obs::metrics().counter("campaign.cache.hit");
  obs::Counter& miss_counter =
      obs::metrics().counter("campaign.cache.miss");
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    for (std::size_t c = 0; c < contexts.size(); ++c) {
      for (std::size_t t = 0; t < contexts[c].triads.size(); ++t) {
        for (const ArithBackend backend : config.backends) {
          for (const std::uint64_t chip : chip_ids) {
            CampaignCellKey key;
            key.workload = workloads[w].name;
            key.circuit = config.circuits[c];
            key.backend = arith_backend_name(backend);
            key.triad = contexts[c].triads[t];
            key.seed = config.seed;
            key.train_patterns =
                backend == ArithBackend::kModel ? config.train_patterns
                                                : 0;
            // The joined energy/BER depend on the characterization
            // budget, so it is part of the cell's identity too.
            key.characterize_patterns = config.characterize_patterns;
            key.chip = chip;
            // "--workloads fir,fir" or repeated backends must not
            // compute (and report) the same cell twice.
            const std::string key_str = key.to_string();
            if (!enumerated.insert(key_str).second) continue;
            // Shard partition by content hash of the key: every shard
            // enumerates the identical grid and claims a disjoint
            // subset, independent of enumeration order or fleet size
            // (fixed hash seed — all shards and merge must agree).
            if (config.shard_count > 1 &&
                fleet_content_hash(0, key_str) % config.shard_count !=
                    config.shard_index)
              continue;
            const std::size_t slot = outcome.cells.size();
            const auto hit = store.find(key);
            if (hit.has_value()) {
              outcome.cells.push_back(*hit);
              ++outcome.reused;
              hit_counter.add();
            } else {
              outcome.cells.push_back(CampaignCell{});  // filled below
              pending.push_back({slot, w, c, t, backend, key});
              miss_counter.add();
            }
          }
        }
      }
    }
  }
  if (config.progress != nullptr) {
    *config.progress << "campaign: grid " << outcome.cells.size()
                     << " cells";
    if (config.shard_count > 1)
      *config.progress << " (shard " << config.shard_index << "/"
                       << config.shard_count << ")";
    *config.progress << ", " << outcome.reused << " from store, "
                     << pending.size() << " to compute\n";
  }

  // Phase 2.5 — characterize only the circuits that still have missing
  // cells, and train only the (circuit, triad) models some pending
  // model-backend cell will read (characterization and training
  // parallelize internally over the shared pool).
  std::vector<bool> circuit_pending(contexts.size(), false);
  std::vector<std::vector<char>> model_triads(contexts.size());
  for (std::size_t c = 0; c < contexts.size(); ++c)
    model_triads[c].assign(contexts[c].triads.size(), 0);
  for (const PendingCell& p : pending) {
    circuit_pending[p.circuit] = true;
    if (p.backend == ArithBackend::kModel)
      model_triads[p.circuit][p.triad] = 1;
  }
  for (std::size_t c = 0; c < contexts.size(); ++c)
    if (circuit_pending[c])
      prepare_context(lib, config, contexts[c], model_triads[c],
                      config.progress);

  // Phase 3 — run the missing cells on the pool. Cells are coarse
  // (one full workload run), so index-claiming costs are negligible.
  obs::ScopedSpan execute_span("campaign.execute", "campaign");
  execute_span.arg("pending", static_cast<std::uint64_t>(pending.size()));
  auto& cells = outcome.cells;
  parallel_for(
      pending.size(),
      [&](std::size_t i) {
        const PendingCell& p = pending[i];
        const Workload& wl = workloads[p.workload];
        const CircuitContext& ctx = contexts[p.circuit];
        const TriadResult& tr = ctx.characterized[p.triad];
        obs::ScopedSpan cell_span("campaign.cell", "campaign");
        cell_span.arg("workload", wl.name)
            .arg("circuit", p.key.circuit)
            .arg("backend", p.key.backend)
            .arg("chip", p.key.chip);
        const auto t0 = std::chrono::steady_clock::now();

        QualityResult q;
        double register_energy_fj = 0.0;  // sim-seq: bank clock/latch
        std::string culprits;  // provenance mode, sim backends only
        const std::uint64_t dseed = data_seed(config.seed, wl.name);
        // The chip's die corner — pure content, so any shard or
        // thread schedule reconstructs the same die. Chip 0 is the
        // nominal die and leaves every config untouched.
        const ChipInstance chip =
            draw_chip_instance(config.fleet, p.key.chip);
        switch (p.backend) {
          case ArithBackend::kExact: {
            q = wl.run(exact_adder_fn(wl.width), dseed);
            break;
          }
          case ArithBackend::kModel: {
            Rng rng(content_seed(config.seed, p.key.to_string()));
            q = wl.run(model_adder_fn(*ctx.models[p.triad], rng), dseed);
            break;
          }
          case ArithBackend::kSimEvent:
          case ArithBackend::kSimLevelized: {
            TimingSimConfig sim_cfg;
            sim_cfg.engine = p.backend == ArithBackend::kSimEvent
                                 ? EngineKind::kEvent
                                 : EngineKind::kLevelized;
            sim_cfg = apply_chip(sim_cfg, chip,
                                 config.fleet.within_die_sigma);
            VosDutSim sim(ctx.dut, lib, ctx.triads[p.triad], sim_cfg);
            std::unique_ptr<ErrorProvenance> prov;
            if (config.provenance) {
              prov = std::make_unique<ErrorProvenance>(ctx.dut);
              sim.engine().attach_observer(prov.get());
            }
            q = wl.run(sim_adder_fn(sim), dseed);
            if (prov != nullptr) {
              culprits = prov->summary().top_culprits_string(
                  config.top_culprits);
              prov->publish("provenance.campaign", config.top_culprits);
            }
            break;
          }
          case ArithBackend::kSimSeq: {
            // The adder between real registers: truncating clocked
            // semantics on the levelized backend. The joined energy/op
            // additionally pays the bank's clock/latch energy.
            TimingSimConfig sim_cfg;
            sim_cfg.engine = EngineKind::kLevelized;
            sim_cfg = apply_chip(sim_cfg, chip,
                                 config.fleet.within_die_sigma);
            SeqSim sim(*ctx.seq, lib, ctx.triads[p.triad], sim_cfg);
            register_energy_fj = seq_clock_energy_fj(
                *ctx.seq, lib, ctx.triads[p.triad].vdd_v);
            std::vector<std::unique_ptr<ErrorProvenance>> provs;
            if (config.provenance) {
              for (std::size_t k = 0; k < sim.num_stages(); ++k) {
                const DutPinMap spins(ctx.seq->stages[k]);
                provs.push_back(std::make_unique<ErrorProvenance>(
                    ctx.seq->stages[k].netlist, spins,
                    static_cast<int>(k)));
                sim.stage_engine(k).attach_observer(provs[k].get());
              }
            }
            // Stream-capable kernels latch whole operand vectors
            // through the packed-lane batch path; dependency-bound
            // ones fall back to one scalar step_cycle per add.
            q = wl.run_batch != nullptr
                    ? wl.run_batch(seq_batch_adder_fn(sim), dseed)
                    : wl.run(seq_adder_fn(sim), dseed);
            if (!provs.empty()) {
              // Stage culprits share one top-K budget per cell; names
              // carry the "s<k>:" stage prefix.
              std::vector<CulpritCount> all;
              for (const auto& prov : provs) {
                const ProvenanceSummary s = prov->summary();
                all.insert(all.end(), s.culprits.begin(),
                           s.culprits.end());
                prov->publish("provenance.campaign",
                              config.top_culprits);
              }
              std::sort(all.begin(), all.end(),
                        [](const CulpritCount& a, const CulpritCount& b) {
                          return a.bits != b.bits ? a.bits > b.bits
                                                  : a.name < b.name;
                        });
              for (std::size_t k = 0;
                   k < all.size() && k < config.top_culprits; ++k) {
                if (!culprits.empty()) culprits += ',';
                culprits += all[k].name + "=" +
                            std::to_string(all[k].bits);
              }
            }
            break;
          }
        }

        CampaignCell cell;
        cell.key = p.key;
        cell.metric = q.metric;
        cell.quality = q.value;
        cell.normalized = q.normalized;
        // Cross-chip caching: characterization ran once on the nominal
        // die; a fleet member's energy rescales the characterized
        // leakage by its die corner analytically instead of
        // re-characterizing the grid per chip. Chip 0 keeps the exact
        // pre-fleet sum (no recomputed rounding).
        cell.energy_per_op_fj =
            p.key.chip == 0
                ? tr.energy_per_op_fj + register_energy_fj
                : tr.dynamic_energy_fj +
                      tr.leakage_energy_fj * chip.leakage_scale +
                      register_energy_fj;
        cell.baseline_fj =
            ctx.characterized[baseline_index(ctx.triads)].energy_per_op_fj;
        cell.ber = tr.ber;
        cell.adds = q.adds;
        cell.culprits = culprits;
        cell.elapsed_s =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        obs::metrics()
            .histogram("campaign.cell.seconds." + cell.key.backend)
            .observe(cell.elapsed_s);
        store.insert(cell);  // append-on-complete
        cells[p.slot] = cell;
        if (config.on_cell) config.on_cell(cell);
      },
      config.jobs);
  outcome.computed = pending.size();

  // Reused cells carry the baseline their original grid had; rebase
  // every cell of a circuit on the current grid's most relaxed triad
  // so one report never mixes savings baselines. Per-triad energy is
  // backend-independent within an energy class — but sim-seq charges
  // the register clock energy on top, so registered and combinational
  // cells rebase separately (a registered design's guard-banded
  // baseline pays its flops too). On a fleet grid each chip is its own
  // die corner, so savings compare against that chip's own
  // guard-banded baseline, not the nominal die's.
  const auto is_seq = [](const CampaignCell& cell) {
    return cell.key.backend == "sim-seq";
  };
  std::set<std::uint64_t> rebase_chips;
  for (const CampaignCell& cell : outcome.cells)
    rebase_chips.insert(cell.key.chip);
  for (const std::string& circuit : config.circuits) {
    for (const bool seq_class : {false, true}) {
      for (const std::uint64_t chip : rebase_chips) {
        const CampaignCell* base = nullptr;
        for (const CampaignCell& cell : outcome.cells)
          if (cell.key.circuit == circuit &&
              is_seq(cell) == seq_class && cell.key.chip == chip &&
              (base == nullptr || relaxation_rank(cell.key.triad) >
                                      relaxation_rank(base->key.triad)))
            base = &cell;
        if (base == nullptr) continue;
        const double baseline = base->energy_per_op_fj;
        for (CampaignCell& cell : outcome.cells)
          if (cell.key.circuit == circuit &&
              is_seq(cell) == seq_class && cell.key.chip == chip)
            cell.baseline_fj = baseline;
      }
    }
  }
  return outcome;
}

}  // namespace vosim
