#include "src/campaign/report.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "src/characterize/characterizer.hpp"

namespace vosim {

std::vector<CampaignCell> pareto_front(std::vector<CampaignCell> cells) {
  std::sort(cells.begin(), cells.end(),
            [](const CampaignCell& a, const CampaignCell& b) {
              if (a.energy_per_op_fj != b.energy_per_op_fj)
                return a.energy_per_op_fj < b.energy_per_op_fj;
              return a.normalized > b.normalized;
            });
  std::vector<CampaignCell> front;
  double best = -1.0;
  for (const CampaignCell& cell : cells) {
    if (cell.normalized > best) {
      front.push_back(cell);
      best = cell.normalized;
    }
  }
  return front;
}

std::optional<CampaignCell> min_energy_at_floor(
    const std::vector<CampaignCell>& cells, double floor) {
  std::optional<CampaignCell> best;
  for (const CampaignCell& cell : cells) {
    if (cell.normalized < floor) continue;
    if (!best.has_value() ||
        cell.energy_per_op_fj < best->energy_per_op_fj)
      best = cell;
  }
  return best;
}

std::vector<CampaignCell> select_cells(
    const std::vector<CampaignCell>& cells, const std::string& workload,
    const std::string& backend) {
  std::vector<CampaignCell> out;
  for (const CampaignCell& cell : cells)
    if (cell.key.workload == workload && cell.key.backend == backend)
      out.push_back(cell);
  return out;
}

TextTable campaign_table(const std::vector<CampaignCell>& cells) {
  TextTable t({"workload", "circuit", "backend", "triad", "metric",
               "quality", "norm", "BER [%]", "E/op [fJ]", "saving [%]"});
  for (const CampaignCell& cell : cells) {
    const double saving =
        cell.baseline_fj > 0.0
            ? energy_efficiency(cell.energy_per_op_fj, cell.baseline_fj) *
                  100.0
            : 0.0;
    t.add_row({cell.key.workload, cell.key.circuit, cell.key.backend,
               triad_label(cell.key.triad), cell.metric,
               format_double(cell.quality, 3),
               format_double(cell.normalized, 3),
               format_double(cell.ber * 100.0, 2),
               format_double(cell.energy_per_op_fj, 2),
               format_double(saving, 1)});
  }
  return t;
}

TextTable pareto_table(const std::vector<CampaignCell>& front) {
  TextTable t({"workload", "circuit", "triad", "metric", "quality",
               "norm", "E/op [fJ]", "saving [%]"});
  for (const CampaignCell& cell : front) {
    const double saving =
        cell.baseline_fj > 0.0
            ? energy_efficiency(cell.energy_per_op_fj, cell.baseline_fj) *
                  100.0
            : 0.0;
    t.add_row({cell.key.workload, cell.key.circuit,
               triad_label(cell.key.triad), cell.metric,
               format_double(cell.quality, 3),
               format_double(cell.normalized, 3),
               format_double(cell.energy_per_op_fj, 2),
               format_double(saving, 1)});
  }
  return t;
}

QualityDeviation model_quality_deviation(
    const std::vector<CampaignCell>& cells) {
  QualityDeviation dev;
  double sum = 0.0;
  for (const CampaignCell& m : cells) {
    if (m.key.backend != "model") continue;
    for (const CampaignCell& s : cells) {
      if (s.key.backend != "sim-event" &&
          s.key.backend != "sim-levelized")
        continue;
      if (s.key.workload != m.key.workload ||
          s.key.circuit != m.key.circuit || s.key.triad != m.key.triad)
        continue;
      const double pp = std::abs(m.normalized - s.normalized) * 100.0;
      ++dev.cells;
      sum += pp;
      dev.max_pp = std::max(dev.max_pp, pp);
    }
  }
  if (dev.cells > 0) dev.mean_pp = sum / static_cast<double>(dev.cells);
  return dev;
}

}  // namespace vosim
