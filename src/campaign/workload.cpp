#include "src/campaign/workload.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/apps/dot.hpp"
#include "src/apps/fir.hpp"
#include "src/apps/image.hpp"
#include "src/apps/kmeans.hpp"
#include "src/characterize/metrics.hpp"
#include "src/util/rng.hpp"

namespace vosim {

namespace {

/// Wraps an adder so the workload can report how many routed additions
/// it performed (the op count the energy join multiplies against).
AdderFn counted(const AdderFn& add, std::uint64_t& count) {
  return [&add, &count](std::uint64_t a, std::uint64_t b) {
    ++count;
    return add(a, b);
  };
}

QualityResult quality(const std::string& metric, double value,
                      std::uint64_t adds) {
  // dB metrics are +infinity on error-free runs; store the display cap
  // instead so results stay finite through tables and the JSONL store.
  if (metric == "snr_db" || metric == "psnr_db")
    value = std::min(value, snr_display_cap_db);
  return {metric, value, normalized_quality(metric, value), adds};
}

QualityResult run_fir(const AdderFn& add, std::uint64_t seed) {
  const FixedSignal signal = make_test_signal(768, 12, seed);
  const FixedSignal reference = fir_lowpass5(signal, exact_adder_fn(16));
  std::uint64_t adds = 0;
  const FixedSignal filtered = fir_lowpass5(signal, counted(add, adds));
  return quality("snr_db", signal_snr_db(reference, filtered), adds);
}

QualityResult run_fir_batch(const BatchAdderFn& add,
                            std::uint64_t seed) {
  const FixedSignal signal = make_test_signal(768, 12, seed);
  const FixedSignal reference = fir_lowpass5(signal, exact_adder_fn(16));
  std::uint64_t adds = 0;
  const BatchAdderFn counted_batch =
      [&add, &adds](std::span<const std::uint64_t> a,
                    std::span<const std::uint64_t> b,
                    std::span<std::uint64_t> out) {
        adds += a.size();
        add(a, b, out);
      };
  const FixedSignal filtered = fir_lowpass5(signal, counted_batch);
  return quality("snr_db", signal_snr_db(reference, filtered), adds);
}

QualityResult run_blur(const AdderFn& add, std::uint64_t seed) {
  const GrayImage scene = make_synthetic_scene(72, 72, seed);
  const GrayImage reference = gaussian_blur3(scene, exact_adder_fn(16));
  std::uint64_t adds = 0;
  const GrayImage blurred = gaussian_blur3(scene, counted(add, adds));
  return quality("psnr_db", psnr_db(reference, blurred), adds);
}

QualityResult run_sobel(const AdderFn& add, std::uint64_t seed) {
  const GrayImage scene = make_synthetic_scene(72, 72, seed);
  const GrayImage reference = sobel_magnitude(scene, exact_adder_fn(16));
  std::uint64_t adds = 0;
  const GrayImage edges = sobel_magnitude(scene, counted(add, adds));
  return quality("psnr_db", psnr_db(reference, edges), adds);
}

QualityResult run_kmeans(const AdderFn& add, std::uint64_t seed) {
  const ClusterDataset data = make_cluster_dataset(4, 90, seed);
  std::uint64_t adds = 0;
  const KmeansResult res = kmeans(data.points, 4, counted(add, adds));
  return quality("accuracy", clustering_accuracy(data, res.assignment),
                 adds);
}

QualityResult run_dot(const AdderFn& add, std::uint64_t seed) {
  constexpr int acc_bits = 16;
  constexpr std::size_t pairs = 32;
  constexpr std::size_t length = 24;
  Rng rng(seed);
  std::uint64_t adds = 0;
  const AdderFn approx = counted(add, adds);
  const AdderFn exact = exact_adder_fn(acc_bits);
  double rel_err = 0.0;
  for (std::size_t p = 0; p < pairs; ++p) {
    std::vector<std::uint8_t> x(length);
    std::vector<std::uint8_t> y(length);
    for (auto& v : x) v = static_cast<std::uint8_t>(rng.below(256));
    for (auto& v : y) v = static_cast<std::uint8_t>(rng.below(256));
    const std::uint64_t ref = approx_dot(exact, x, y, acc_bits);
    const std::uint64_t out = approx_dot(approx, x, y, acc_bits);
    const double diff = ref >= out ? static_cast<double>(ref - out)
                                   : static_cast<double>(out - ref);
    rel_err += diff / static_cast<double>(std::max<std::uint64_t>(ref, 1));
  }
  return quality("mred", rel_err / static_cast<double>(pairs), adds);
}

}  // namespace

const std::vector<Workload>& workload_registry() {
  static const std::vector<Workload> registry = {
      {"fir", "FIR low-pass filtering (signal processing)", "snr_db", 16,
       run_fir, run_fir_batch},
      {"blur", "Gaussian 3x3 image blur (image processing)", "psnr_db", 16,
       run_blur},
      {"sobel", "Sobel edge magnitude (image processing)", "psnr_db", 16,
       run_sobel},
      {"kmeans", "k-means clustering (machine learning)", "accuracy", 16,
       run_kmeans},
      {"dot", "u8 dot products (data mining)", "mred", 16, run_dot},
  };
  return registry;
}

const Workload* find_workload(const std::string& name) {
  for (const Workload& w : workload_registry())
    if (w.name == name) return &w;
  return nullptr;
}

std::vector<Workload> resolve_workloads(
    const std::vector<std::string>& names) {
  std::vector<Workload> out;
  for (const std::string& name : names) {
    if (name == "all") {
      for (const Workload& w : workload_registry()) out.push_back(w);
      continue;
    }
    const Workload* w = find_workload(name);
    if (w == nullptr)
      throw std::invalid_argument("unknown workload '" + name + "'; " +
                                  known_workloads_help());
    out.push_back(*w);
  }
  if (out.empty()) throw std::invalid_argument("no workloads selected");
  return out;
}

std::string known_workloads_help() {
  std::string help = "workloads:";
  for (const Workload& w : workload_registry())
    help += " " + w.name + " (" + w.metric + ")";
  return help;
}

double normalized_quality(const std::string& metric, double value) {
  if (metric == "snr_db" || metric == "psnr_db") {
    const double capped = std::min(value, snr_display_cap_db);
    return std::clamp(capped / snr_display_cap_db, 0.0, 1.0);
  }
  if (metric == "accuracy") return std::clamp(value, 0.0, 1.0);
  if (metric == "mred") return std::clamp(1.0 - value, 0.0, 1.0);
  throw std::invalid_argument("unknown quality metric '" + metric + "'");
}

}  // namespace vosim
