// Campaign runner: executes the workload × circuit × triad × backend
// grid — the application-level quality-vs-energy sweep the paper's
// Section IV / Fig. 8 story calls for, at production scale.
//
// Per circuit the runner synthesizes once, characterizes every triad
// once (gate-level energy + BER on the levelized engine's grid fast
// path) and, when the model backend is requested, trains one
// statistical VOS model per triad. The cells of the grid then run in
// parallel on the shared persistent ThreadPool; each finished cell is
// appended to the CampaignStore, so interrupted or re-run campaigns
// recompute only the missing cells. Results are bit-deterministic for
// a fixed config across runs and thread counts: every cell derives its
// own Rng from the campaign seed and the cell's content key, never
// from scheduling order.
#ifndef VOSIM_CAMPAIGN_RUNNER_HPP
#define VOSIM_CAMPAIGN_RUNNER_HPP

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/campaign/store.hpp"
#include "src/campaign/workload.hpp"
#include "src/fleet/fleet.hpp"
#include "src/tech/library.hpp"
#include "src/tech/operating_point.hpp"

namespace vosim {

/// Arithmetic backend axis of the grid: how the routed adder is
/// realized for a cell. Exact is the reference (quality ceiling), the
/// statistical model is the fast path for millions of ops, and the two
/// gate-level backends replay the workload through a timing simulation
/// — so model-vs-sim quality deviation is a first-class campaign
/// output rather than a side experiment.
enum class ArithBackend {
  kExact,         ///< exact addition (quality ceiling, nominal energy)
  kModel,         ///< trained statistical VOS model (prob-table injection)
  kSimEvent,      ///< gate-level, event-driven engine
  kSimLevelized,  ///< gate-level, bit-parallel levelized engine
  kSimSeq,        ///< gate-level, clocked single-stage pipeline: the
                  ///< adder between registers with truncating cycle
                  ///< semantics, per-flop setup margin and register
                  ///< clock energy in the joined energy/op (src/seq)
};

const char* arith_backend_name(ArithBackend backend);
/// Parses "exact" | "model" | "sim-event" | "sim-levelized" (alias
/// "sim") | "sim-seq"; throws std::invalid_argument otherwise.
ArithBackend parse_arith_backend(const std::string& name);

/// Relative operating point: Tclk as a multiple of the circuit's own
/// synthesis critical path. Lets one campaign spec stress every
/// circuit equally (the Table-III philosophy).
struct TriadSpec {
  double tclk_scale = 1.0;
  double vdd_v = 1.0;
  double vbb_v = 0.0;
};

/// The grid. Triads per circuit resolve in priority order: explicit
/// `triads` > `triad_specs` (scaled by each circuit's critical path) >
/// the full Table-III 43-triad set; `max_triads` then truncates.
struct CampaignConfig {
  std::vector<std::string> workloads{"fir", "blur", "sobel", "kmeans",
                                     "dot"};
  std::vector<std::string> circuits{"rca16"};
  std::vector<ArithBackend> backends{ArithBackend::kModel};
  std::vector<OperatingTriad> triads;    ///< absolute override
  std::vector<TriadSpec> triad_specs;    ///< relative override
  std::size_t max_triads = 0;            ///< 0 = no truncation
  std::uint64_t seed = 1;                ///< campaign seed (cache key)
  std::size_t characterize_patterns = 2000;  ///< energy/BER join budget
  std::size_t train_patterns = 4000;     ///< model training budget
  unsigned jobs = 0;                     ///< worker threads (0 = default)
  std::ostream* progress = nullptr;      ///< optional narration stream
  /// Chip axis: fleet.num_chips == 0 runs the single nominal die
  /// (chip 0 — bit-compatible with pre-fleet campaigns); otherwise the
  /// grid gains a chip dimension 1..num_chips. Synthesis,
  /// characterization, the levelized normalized timing pass and model
  /// training stay per-(circuit, triad) — computed once and shared
  /// across every chip — while the gate-level backends replay each
  /// cell on the chip's own die (delay/leakage corner + within-die
  /// draw) and the energy join rescales the characterized leakage by
  /// the chip's corner analytically.
  FleetConfig fleet;
  /// Grid sharding for multi-process runs (`vosim_cli campaign --shard
  /// i/N`): cell keys are content-hashed onto shards, so every process
  /// enumerates the identical grid and executes a disjoint,
  /// enumeration-order-independent subset. Each shard writes its own
  /// store; merge_stores() unions them into the single-process store.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  /// Opt-in error provenance for the gate-level sim backends
  /// (sim-event / sim-levelized / sim-seq): every computed sim cell
  /// attaches ErrorProvenance observers to its engines and records the
  /// top-K culprit nets into CampaignCell::culprits; the accumulation
  /// also folds into the metrics registry under "provenance.campaign".
  /// Non-sim backends leave culprits empty.
  bool provenance = false;
  std::size_t top_culprits = 4;  ///< culprit nets kept per cell
  /// Live-progress hook: invoked once per *computed* cell, right after
  /// the store append (reused cells never fire it). Runs on pool
  /// worker threads — the callback must be thread-safe. The serve
  /// daemon's `watch` verb streams from this.
  std::function<void(const CampaignCell&)> on_cell;
};

/// Outcome: the full grid in deterministic (workload-major) order plus
/// the resume accounting.
struct CampaignOutcome {
  std::vector<CampaignCell> cells;
  std::size_t reused = 0;    ///< cells answered from the store
  std::size_t computed = 0;  ///< cells executed this run
};

/// Runs the campaign; throws std::invalid_argument on unknown
/// workloads/backends, malformed circuit specs, or a circuit that
/// cannot back a requested backend (model/sim need an adder of the
/// workload's width).
CampaignOutcome run_campaign(const CellLibrary& lib,
                             const CampaignConfig& config,
                             CampaignStore& store);

}  // namespace vosim

#endif  // VOSIM_CAMPAIGN_RUNNER_HPP
