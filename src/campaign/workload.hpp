// Workload registry — the application layer of the campaign subsystem.
//
// A Workload wraps one of the src/apps kernels behind a uniform
// run(AdderFn, seed) -> QualityResult interface, so the campaign runner
// can sweep every error-resilient application over the same
// circuit × triad × backend grid (the paper's Section IV story made
// repeatable). Each workload fixes its input data from the seed, runs
// the kernel through the routed adder, and scores the output against
// the exact-adder reference with its own domain metric (SNR, PSNR,
// clustering accuracy, MRED) plus a normalized [0, 1] quality score the
// Pareto aggregation can compare across workloads.
#ifndef VOSIM_CAMPAIGN_WORKLOAD_HPP
#define VOSIM_CAMPAIGN_WORKLOAD_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/apps/approx_arith.hpp"

namespace vosim {

/// Outcome of one workload run on one adder.
struct QualityResult {
  std::string metric;       ///< "snr_db", "psnr_db", "accuracy", "mred"
  double value = 0.0;       ///< in the metric's native unit
  double normalized = 0.0;  ///< [0, 1], higher is better, unit-free
  std::uint64_t adds = 0;   ///< routed adder invocations
};

/// One registered application workload. `width` is the adder width the
/// kernel routes its arithmetic through; a campaign circuit must expose
/// an adder of exactly that width for the model/sim backends.
struct Workload {
  std::string name;    ///< registry key, e.g. "fir"
  std::string title;   ///< human description
  std::string metric;  ///< metric token of the QualityResult it emits
  int width = 16;      ///< routed adder width
  std::function<QualityResult(const AdderFn&, std::uint64_t seed)> run;
  /// Streaming variant for clocked backends, set only when the kernel
  /// can restructure its additions into independent whole-vector
  /// passes (e.g. fir). Null for dependency-bound kernels — the runner
  /// falls back to the scalar path.
  std::function<QualityResult(const BatchAdderFn&, std::uint64_t seed)>
      run_batch;
};

/// The built-in workloads: fir (SNR), blur + sobel (PSNR), kmeans
/// (clustering accuracy), dot (MRED).
const std::vector<Workload>& workload_registry();

/// Registry lookup; nullptr when unknown.
const Workload* find_workload(const std::string& name);

/// Resolves names ("all" expands to the full registry) or throws
/// std::invalid_argument naming the unknown workload.
std::vector<Workload> resolve_workloads(
    const std::vector<std::string>& names);

/// One-line list of registered workloads for CLI usage text.
std::string known_workloads_help();

/// Maps a metric value onto the unit-free [0, 1] quality scale used by
/// Pareto fronts and quality floors: dB metrics saturate at
/// snr_display_cap_db, accuracy is already a fraction, MRED inverts
/// (1 - mred). Throws std::invalid_argument on an unknown metric token.
double normalized_quality(const std::string& metric, double value);

}  // namespace vosim

#endif  // VOSIM_CAMPAIGN_WORKLOAD_HPP
