#include "src/campaign/store.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/obs/manifest.hpp"

namespace vosim {

namespace jsonl {

/// %.17g always round-trips; try %.15g first so common values stay
/// readable.
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.15g", v);
  if (std::strtod(buf, nullptr) != v)
    std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

bool raw_field(const std::string& line, const std::string& field,
               std::string& out) {
  const std::string needle = "\"" + field + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  std::size_t begin = at + needle.size();
  if (begin >= line.size()) return false;
  if (line[begin] == '"') {
    const std::size_t end = line.find('"', begin + 1);
    if (end == std::string::npos) return false;
    out = line.substr(begin + 1, end - begin - 1);
    return true;
  }
  std::size_t end = begin;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  out = line.substr(begin, end - begin);
  return !out.empty();
}

bool num_field(const std::string& line, const std::string& field,
               double& out) {
  std::string raw;
  if (!raw_field(line, field, raw)) return false;
  char* end = nullptr;
  out = std::strtod(raw.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool u64_field(const std::string& line, const std::string& field,
               std::uint64_t& out) {
  std::string raw;
  if (!raw_field(line, field, raw)) return false;
  // strtoull would silently wrap "-1"; these fields are never written
  // negative, so a sign means corruption.
  if (raw[0] == '-' || raw[0] == '+') return false;
  char* end = nullptr;
  out = std::strtoull(raw.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

}  // namespace jsonl

using jsonl::num;
using jsonl::num_field;
using jsonl::raw_field;
using jsonl::u64_field;

std::string CampaignCellKey::to_string() const {
  std::ostringstream os;
  os << workload << '|' << circuit << '|' << backend << '|'
     << num(triad.tclk_ns) << ',' << num(triad.vdd_v) << ','
     << num(triad.vbb_v) << '|' << seed << '|' << train_patterns << '|'
     << characterize_patterns << '|' << chip;
  return os.str();
}

CampaignStore::CampaignStore(std::string path) : path_(std::move(path)) {
  std::ifstream in(path_);
  if (!in) return;  // a fresh store: the file appears on first insert
  std::string line;
  while (std::getline(in, line)) {
    const auto cell = parse_jsonl(line);
    if (cell.has_value()) {
      cells_.insert_or_assign(cell->key.to_string(), *cell);
    } else if (obs::RunManifest::is_manifest_line(line)) {
      manifest_line_ = line;  // last manifest wins, like cells
    }
  }
}

const std::string& CampaignStore::manifest_line() const {
  std::lock_guard<std::mutex> lock(m_);
  return manifest_line_;
}

void CampaignStore::write_header(const std::string& line) {
  std::lock_guard<std::mutex> lock(m_);
  if (path_.empty() || !manifest_line_.empty()) return;
  std::ofstream out(path_, std::ios::app);
  if (!out)
    throw std::runtime_error("campaign store: cannot append to " + path_);
  out << line << '\n';
  manifest_line_ = line;
}

std::size_t CampaignStore::size() const {
  std::lock_guard<std::mutex> lock(m_);
  return cells_.size();
}

std::optional<CampaignCell> CampaignStore::find(
    const CampaignCellKey& key) const {
  std::lock_guard<std::mutex> lock(m_);
  const auto it = cells_.find(key.to_string());
  if (it == cells_.end()) return std::nullopt;
  return it->second;
}

void CampaignStore::insert(const CampaignCell& cell) {
  std::lock_guard<std::mutex> lock(m_);
  cells_.insert_or_assign(cell.key.to_string(), cell);
  if (path_.empty()) return;
  std::ofstream out(path_, std::ios::app);
  if (!out)
    throw std::runtime_error("campaign store: cannot append to " + path_);
  out << to_jsonl(cell) << '\n';
  out.flush();
}

std::vector<CampaignCell> CampaignStore::cells() const {
  std::lock_guard<std::mutex> lock(m_);
  std::vector<CampaignCell> out;
  out.reserve(cells_.size());
  for (const auto& [key, cell] : cells_) out.push_back(cell);
  return out;
}

std::string CampaignStore::to_jsonl(const CampaignCell& cell) {
  // Names are identifiers (registry tokens), so no string escaping is
  // needed; parse_jsonl rejects anything it did not write.
  std::ostringstream os;
  os << "{\"workload\":\"" << cell.key.workload << "\""
     << ",\"circuit\":\"" << cell.key.circuit << "\""
     << ",\"backend\":\"" << cell.key.backend << "\""
     << ",\"tclk_ns\":" << num(cell.key.triad.tclk_ns)
     << ",\"vdd_v\":" << num(cell.key.triad.vdd_v)
     << ",\"vbb_v\":" << num(cell.key.triad.vbb_v)
     << ",\"seed\":" << cell.key.seed
     << ",\"train_patterns\":" << cell.key.train_patterns
     << ",\"characterize_patterns\":" << cell.key.characterize_patterns
     << ",\"chip\":" << cell.key.chip
     << ",\"metric\":\"" << cell.metric << "\""
     << ",\"quality\":" << num(cell.quality)
     << ",\"normalized\":" << num(cell.normalized)
     << ",\"energy_per_op_fj\":" << num(cell.energy_per_op_fj)
     << ",\"baseline_fj\":" << num(cell.baseline_fj)
     << ",\"ber\":" << num(cell.ber)
     << ",\"adds\":" << cell.adds
     << ",\"elapsed_s\":" << num(cell.elapsed_s);
  if (!cell.culprits.empty()) os << ",\"culprits\":\"" << cell.culprits << "\"";
  os << "}";
  return os.str();
}

std::optional<CampaignCell> CampaignStore::parse_jsonl(
    const std::string& line) {
  CampaignCell cell;
  if (!raw_field(line, "workload", cell.key.workload) ||
      !raw_field(line, "circuit", cell.key.circuit) ||
      !raw_field(line, "backend", cell.key.backend) ||
      !num_field(line, "tclk_ns", cell.key.triad.tclk_ns) ||
      !num_field(line, "vdd_v", cell.key.triad.vdd_v) ||
      !num_field(line, "vbb_v", cell.key.triad.vbb_v) ||
      !u64_field(line, "seed", cell.key.seed) ||
      !u64_field(line, "train_patterns", cell.key.train_patterns) ||
      !u64_field(line, "characterize_patterns",
                 cell.key.characterize_patterns) ||
      !raw_field(line, "metric", cell.metric) ||
      !num_field(line, "quality", cell.quality) ||
      !num_field(line, "normalized", cell.normalized) ||
      !num_field(line, "energy_per_op_fj", cell.energy_per_op_fj) ||
      !num_field(line, "baseline_fj", cell.baseline_fj) ||
      !num_field(line, "ber", cell.ber) ||
      !u64_field(line, "adds", cell.adds) ||
      !num_field(line, "elapsed_s", cell.elapsed_s))
    return std::nullopt;
  // Pre-fleet stores have no chip field: those cells are the nominal
  // die (chip 0). A present-but-garbled chip still rejects the line.
  std::string chip_raw;
  if (raw_field(line, "chip", chip_raw)) {
    if (!u64_field(line, "chip", cell.key.chip)) return std::nullopt;
  } else {
    cell.key.chip = 0;
  }
  // Optional provenance field (absent on provenance-free runs and on
  // every pre-provenance store).
  if (!raw_field(line, "culprits", cell.culprits)) cell.culprits.clear();
  return cell;
}

MergeStats merge_stores(const std::vector<std::string>& inputs,
                        const std::string& out_path,
                        bool strip_timing) {
  MergeStats stats;
  std::map<std::string, CampaignCell> merged;
  for (const std::string& path : inputs) {
    std::ifstream in(path);
    if (!in)
      throw std::runtime_error("merge-store: cannot read " + path);
    ++stats.files;
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      ++stats.lines;
      auto cell = CampaignStore::parse_jsonl(line);
      if (!cell.has_value()) {
        // Run-manifest headers describe one producing run, so a merged
        // store keeps none of them; they are excluded, not "malformed".
        if (obs::RunManifest::is_manifest_line(line)) {
          ++stats.manifests;
        } else {
          ++stats.skipped;
        }
        continue;
      }
      merged.insert_or_assign(cell->key.to_string(), *cell);
    }
  }
  std::ofstream out(out_path, std::ios::trunc);
  if (!out)
    throw std::runtime_error("merge-store: cannot write " + out_path);
  for (auto& [key, cell] : merged) {
    if (strip_timing) cell.elapsed_s = 0.0;
    out << CampaignStore::to_jsonl(cell) << '\n';
  }
  stats.cells = merged.size();
  return stats;
}

}  // namespace vosim
