// Model-fidelity evaluation: how closely the statistical model tracks
// the (simulated) hardware operator on held-out patterns — the data
// behind the paper's Fig. 7.
#ifndef VOSIM_MODEL_EVALUATION_HPP
#define VOSIM_MODEL_EVALUATION_HPP

#include <vector>

#include "src/model/vos_model.hpp"

namespace vosim {

/// Fidelity of one model against one oracle.
struct FidelityResult {
  OperatingTriad triad;
  double snr_db = 0.0;            ///< +inf when the match is perfect
  double normalized_hamming = 0.0;
  double mse = 0.0;
  double model_ber = 0.0;   ///< model vs exact addition
  double oracle_ber = 0.0;  ///< oracle vs exact addition
  bool exact_match = false; ///< model output == oracle output everywhere
};

/// Evaluation knobs. Evaluation patterns must differ from training ones
/// (a different seed), as in any honest calibration study.
struct FidelityConfig {
  std::size_t num_patterns = 20000;
  PatternPolicy policy = PatternPolicy::kCarryBalanced;
  std::uint64_t pattern_seed = 1729;  ///< held-out stimuli
  std::uint64_t model_rng_seed = 99;
};

/// Compares model and oracle outputs pattern by pattern; the *oracle*
/// output is the SNR reference (paper Section IV).
FidelityResult evaluate_fidelity(const VosAdderModel& model,
                                 const HardwareOracle& oracle,
                                 const FidelityConfig& config = {});

/// Aggregate of per-triad fidelity over a sweep, as plotted in Fig. 7:
/// triads where both model and oracle are error-free carry no modeling
/// information and are excluded from the means.
struct FidelitySummary {
  double mean_snr_db = 0.0;
  double mean_normalized_hamming = 0.0;
  int evaluated_triads = 0;
  int error_free_triads = 0;
};

FidelitySummary summarize_fidelity(const std::vector<FidelityResult>& runs);

}  // namespace vosim

#endif  // VOSIM_MODEL_EVALUATION_HPP
