// Accuracy metrics used to calibrate the statistical model against the
// hardware operator (paper Section IV): MSE, Hamming and weighted
// Hamming distance.
#ifndef VOSIM_MODEL_DISTANCE_HPP
#define VOSIM_MODEL_DISTANCE_HPP

#include <cstdint>
#include <string>

namespace vosim {

/// Calibration distance metrics.
enum class DistanceMetric {
  kMse,              ///< squared numerical deviation
  kHamming,          ///< number of flipped bits
  kWeightedHamming,  ///< flipped bits weighted by 2^position
};

std::string distance_metric_name(DistanceMetric metric);

/// Distance between two nbits-wide words under the chosen metric.
double distance(std::uint64_t x, std::uint64_t y, int nbits,
                DistanceMetric metric);

}  // namespace vosim

#endif  // VOSIM_MODEL_DISTANCE_HPP
