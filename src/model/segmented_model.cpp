#include "src/model/segmented_model.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "src/model/carry_chain.hpp"
#include "src/model/windowed_add.hpp"
#include "src/model/distance.hpp"
#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"

namespace vosim {

namespace {

void check_bounds(int width, const std::vector<int>& bounds) {
  VOSIM_EXPECTS(bounds.size() >= 2);
  VOSIM_EXPECTS(bounds.front() == 0);
  VOSIM_EXPECTS(bounds.back() == width + 1);
  for (std::size_t s = 1; s < bounds.size(); ++s)
    VOSIM_EXPECTS(bounds[s] > bounds[s - 1]);
}

/// Distance restricted to the bits of one segment.
double segment_distance(std::uint64_t x, std::uint64_t y, int lo, int hi,
                        DistanceMetric metric) {
  const std::uint64_t m = (mask_n(hi) & ~mask_n(lo));
  // Shift down so the MSE metric weighs segment-local significance.
  return distance((x & m) >> lo, (y & m) >> lo, hi - lo, metric);
}

}  // namespace

std::uint64_t segmented_windowed_add(std::uint64_t a, std::uint64_t b,
                                     int width,
                                     const std::vector<int>& bounds,
                                     const std::vector<int>& windows) {
  VOSIM_EXPECTS(width >= 1 && width <= max_word_bits);
  check_bounds(width, bounds);
  VOSIM_EXPECTS(windows.size() + 1 == bounds.size());
  const std::uint64_t g = a & b;
  const std::uint64_t p = a ^ b;

  std::uint64_t result = 0;
  int origin = -1;
  std::size_t seg = 0;
  for (int i = 0; i <= width; ++i) {
    while (i >= bounds[seg + 1]) ++seg;
    const int window = windows[seg];
    const bool carry_in =
        origin >= 0 && window > 0 && (i - origin) <= window;
    if (i == width) {
      if (carry_in) result |= (1ULL << width);
      break;
    }
    const int pi = bit_of(p, i);
    if ((pi != 0) != carry_in) result |= (1ULL << i);
    if (bit_of(g, i) != 0) {
      origin = i;
    } else if (pi == 0) {
      origin = -1;
    }
  }
  return result;
}

int max_chain_into_segment(std::uint64_t a, std::uint64_t b, int width,
                           int lo, int hi) {
  VOSIM_EXPECTS(lo >= 0 && hi > lo && hi <= width + 1);
  const std::vector<int> dist = carry_travel_distances(a, b, width);
  int best = 0;
  for (int i = lo; i < hi; ++i)
    best = std::max(best, dist[static_cast<std::size_t>(i)]);
  return best;
}

std::vector<int> equal_segments(int width, int num_segments) {
  VOSIM_EXPECTS(num_segments >= 1 && num_segments <= width + 1);
  std::vector<int> bounds;
  bounds.push_back(0);
  const int total = width + 1;
  for (int s = 1; s < num_segments; ++s)
    bounds.push_back(s * total / num_segments);
  bounds.push_back(total);
  return bounds;
}

SegmentedVosModel::SegmentedVosModel(int width, OperatingTriad triad,
                                     std::vector<int> bounds,
                                     std::vector<CarryChainProbTable> tables)
    : width_(width),
      triad_(triad),
      bounds_(std::move(bounds)),
      tables_(std::move(tables)) {
  check_bounds(width_, bounds_);
  VOSIM_EXPECTS(tables_.size() + 1 == bounds_.size());
  for (const CarryChainProbTable& t : tables_)
    VOSIM_EXPECTS(t.width() == width_);
}

const CarryChainProbTable& SegmentedVosModel::table(int segment) const {
  VOSIM_EXPECTS(segment >= 0 &&
                segment < static_cast<int>(tables_.size()));
  return tables_[static_cast<std::size_t>(segment)];
}

std::uint64_t SegmentedVosModel::add(std::uint64_t a, std::uint64_t b,
                                     Rng& rng) const {
  std::vector<int> windows(tables_.size(), 0);
  for (std::size_t s = 0; s < tables_.size(); ++s) {
    const int cth = max_chain_into_segment(
        a, b, width_, bounds_[s], bounds_[s + 1]);
    windows[s] = tables_[s].sample(cth, rng);
  }
  return segmented_windowed_add(a, b, width_, bounds_, windows);
}

void SegmentedVosModel::save(std::ostream& os) const {
  os << "segmented_vos_model v1 " << width_ << " " << tables_.size();
  for (const int b : bounds_) os << " " << b;
  os << " " << triad_.tclk_ns << " " << triad_.vdd_v << " " << triad_.vbb_v
     << "\n";
  for (const CarryChainProbTable& t : tables_) t.save(os);
}

SegmentedVosModel SegmentedVosModel::load(std::istream& is) {
  std::string magic;
  std::string version;
  int width = 0;
  std::size_t segments = 0;
  is >> magic >> version >> width >> segments;
  if (!is || magic != "segmented_vos_model" || version != "v1")
    throw std::runtime_error("bad segmented model header");
  std::vector<int> bounds(segments + 1, 0);
  for (int& b : bounds) is >> b;
  OperatingTriad triad;
  is >> triad.tclk_ns >> triad.vdd_v >> triad.vbb_v;
  if (!is) throw std::runtime_error("truncated segmented model header");
  std::vector<CarryChainProbTable> tables;
  tables.reserve(segments);
  for (std::size_t s = 0; s < segments; ++s)
    tables.push_back(CarryChainProbTable::load(is));
  return SegmentedVosModel(width, triad, std::move(bounds),
                           std::move(tables));
}

SegmentedVosModel train_segmented_model(int width,
                                        const OperatingTriad& triad,
                                        const HardwareOracle& oracle,
                                        int num_segments,
                                        const TrainerConfig& config) {
  VOSIM_EXPECTS(config.num_patterns > 0);
  const std::vector<int> bounds = equal_segments(width, num_segments);
  const auto n = static_cast<std::size_t>(width) + 1;
  std::vector<std::vector<std::vector<std::uint64_t>>> counts(
      static_cast<std::size_t>(num_segments),
      std::vector<std::vector<std::uint64_t>>(
          n, std::vector<std::uint64_t>(n, 0)));

  PatternStream patterns(config.policy, width, config.pattern_seed);
  for (std::size_t i = 0; i < config.num_patterns; ++i) {
    const OperandPair pat = patterns.next();
    const std::uint64_t observed = oracle(pat.a, pat.b);
    for (int s = 0; s < num_segments; ++s) {
      const auto us = static_cast<std::size_t>(s);
      const int lo = bounds[us];
      const int hi = bounds[us + 1];
      const int cth = max_chain_into_segment(pat.a, pat.b, width, lo, hi);
      // Inner Algorithm-1 loop, restricted to this segment's bits. The
      // other segments' windows do not affect bits inside [lo, hi), so
      // the per-segment optimum is well defined with a single global
      // window sweep.
      double best = -1.0;
      int best_c = cth;
      for (int c = cth; c >= 0; --c) {
        const std::uint64_t x = windowed_add(pat.a, pat.b, width, c);
        const double d = segment_distance(observed, x, lo, hi,
                                          config.metric);
        if (best < 0.0 || d <= best) {
          best = d;
          best_c = c;
        }
      }
      ++counts[us][static_cast<std::size_t>(cth)]
              [static_cast<std::size_t>(best_c)];
    }
  }

  std::vector<CarryChainProbTable> tables;
  tables.reserve(static_cast<std::size_t>(num_segments));
  for (int s = 0; s < num_segments; ++s)
    tables.push_back(CarryChainProbTable::from_counts(
        width, counts[static_cast<std::size_t>(s)]));
  return SegmentedVosModel(width, triad, bounds, std::move(tables));
}

}  // namespace vosim
