// Offline optimization constructing the probability table (paper
// Algorithm 1): for each training pair, find the carry window whose
// modified addition best matches the hardware output under the chosen
// distance metric, and histogram it against the theoretical chain.
#ifndef VOSIM_MODEL_TRAINER_HPP
#define VOSIM_MODEL_TRAINER_HPP

#include <cstdint>
#include <functional>

#include "src/characterize/patterns.hpp"
#include "src/model/distance.hpp"
#include "src/model/prob_table.hpp"

namespace vosim {

/// The "hardware adder" of Algorithm 1: returns the sampled (width+1)-bit
/// output for an operand pair. In this reproduction it is usually a
/// VosDutSim closure, but it can wrap a silicon trace or another model.
using HardwareOracle =
    std::function<std::uint64_t(std::uint64_t a, std::uint64_t b)>;

/// Training knobs.
struct TrainerConfig {
  std::size_t num_patterns = 20000;
  DistanceMetric metric = DistanceMetric::kMse;
  PatternPolicy policy = PatternPolicy::kCarryBalanced;
  std::uint64_t pattern_seed = 42;
};

/// Runs Algorithm 1 and returns the normalized probability table.
CarryChainProbTable train_carry_table(int width, const HardwareOracle& oracle,
                                      const TrainerConfig& config = {});

/// Single-pair inner step of Algorithm 1 (exposed for tests): the
/// smallest window whose modified addition minimizes the distance to the
/// observed output.
int best_window(std::uint64_t a, std::uint64_t b, int width,
                std::uint64_t observed, DistanceMetric metric);

}  // namespace vosim

#endif  // VOSIM_MODEL_TRAINER_HPP
