#include "src/model/energy_model.hpp"

#include <cmath>

#include "src/model/carry_chain.hpp"
#include "src/netlist/dut.hpp"
#include "src/sim/vos_dut.hpp"
#include "src/tech/gate_timing.hpp"
#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"

namespace vosim {

namespace {

constexpr int nf = energy_feature_count;

/// Feature vector: {1, toggled input bits, bounded chain length, toggled
/// sum bits, propagate count} — everything an algorithm-level caller can
/// compute from the operands alone.
std::array<double, nf> features(int width, std::uint64_t prev_a,
                                std::uint64_t prev_b, std::uint64_t a,
                                std::uint64_t b, double tclk_margin_chain) {
  const int toggles = hamming_distance(prev_a, a, width) +
                      hamming_distance(prev_b, b, width);
  // The chain that actually switches is bounded by what fits in the
  // clock period; the margin estimate keeps the feature linear.
  const double chain =
      std::min<double>(theoretical_max_carry_chain(a, b, width),
                       tclk_margin_chain);
  const int sum_toggles =
      hamming_distance(prev_a + prev_b, a + b, width + 1);
  const int propagate = popcount_u64((a ^ b) & mask_n(width));
  const int generate = popcount_u64(a & b & mask_n(width));
  return {1.0, static_cast<double>(toggles), chain,
          static_cast<double>(sum_toggles),
          static_cast<double>(propagate),
          static_cast<double>(generate)};
}

/// Solves the nf x nf normal equations (X^T X) c = X^T y with
/// Gauss-Jordan elimination and partial pivoting.
std::array<double, nf> solve_normal(std::array<std::array<double, nf>, nf> m,
                                    std::array<double, nf> v) {
  for (int col = 0; col < nf; ++col) {
    int pivot = col;
    for (int r = col + 1; r < nf; ++r)
      if (std::abs(m[static_cast<std::size_t>(r)]
                    [static_cast<std::size_t>(col)]) >
          std::abs(m[static_cast<std::size_t>(pivot)]
                    [static_cast<std::size_t>(col)]))
        pivot = r;
    std::swap(m[static_cast<std::size_t>(col)],
              m[static_cast<std::size_t>(pivot)]);
    std::swap(v[static_cast<std::size_t>(col)],
              v[static_cast<std::size_t>(pivot)]);
    const double diag =
        m[static_cast<std::size_t>(col)][static_cast<std::size_t>(col)];
    VOSIM_ENSURES(std::abs(diag) > 1e-12);
    for (int r = 0; r < nf; ++r) {
      if (r == col) continue;
      const double f = m[static_cast<std::size_t>(r)]
                        [static_cast<std::size_t>(col)] /
                       diag;
      for (int c2 = 0; c2 < nf; ++c2)
        m[static_cast<std::size_t>(r)][static_cast<std::size_t>(c2)] -=
            f * m[static_cast<std::size_t>(col)]
                 [static_cast<std::size_t>(c2)];
      v[static_cast<std::size_t>(r)] -= f * v[static_cast<std::size_t>(col)];
    }
  }
  std::array<double, nf> out{};
  for (int i = 0; i < nf; ++i)
    out[static_cast<std::size_t>(i)] =
        v[static_cast<std::size_t>(i)] /
        m[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)];
  return out;
}

/// Chain lengths beyond the clock budget never complete; estimate the
/// budget in "chain links" from the triad (used as a feature clamp).
double chain_budget(const AdderNetlist& adder, const CellLibrary& lib,
                    const OperatingTriad& triad) {
  // Rough per-link delay: a MAJ3 stage at this operating point.
  const double link_ps =
      gate_delay_ps(lib.cell(CellKind::kMaj3), 3.0, lib.transistor_model(),
                    triad);
  const double budget = (triad.tclk_ns * 1e3) / link_ps;
  return std::min<double>(budget, adder.width);
}

}  // namespace

VosEnergyModel::VosEnergyModel(
    int width, OperatingTriad triad,
    std::array<double, energy_feature_count> coefficients,
    double chain_clamp)
    : width_(width),
      triad_(triad),
      coef_(coefficients),
      chain_clamp_(chain_clamp) {
  VOSIM_EXPECTS(width >= 1 && width <= max_word_bits);
  VOSIM_EXPECTS(chain_clamp > 0.0);
}

double VosEnergyModel::predict_fj(std::uint64_t prev_a, std::uint64_t prev_b,
                                  std::uint64_t a, std::uint64_t b) const {
  const auto f = features(width_, prev_a, prev_b, a, b, chain_clamp_);
  double e = 0.0;
  for (int i = 0; i < energy_feature_count; ++i)
    e += coef_[static_cast<std::size_t>(i)] * f[static_cast<std::size_t>(i)];
  return std::max(e, 0.0);
}

VosEnergyModel train_energy_model(const AdderNetlist& adder,
                                  const CellLibrary& lib,
                                  const OperatingTriad& triad,
                                  const EnergyTrainerConfig& config) {
  VOSIM_EXPECTS(config.num_patterns >= 16);
  const DutNetlist dut = to_dut(adder);
  VosDutSim sim(dut, lib, triad, config.sim_config);
  PatternStream patterns(config.policy, adder.width, config.pattern_seed);
  const double clamp = chain_budget(adder, lib, triad);

  std::array<std::array<double, nf>, nf> xtx{};
  std::array<double, nf> xty{};
  OperandPair prev = patterns.next();
  sim.reset(prev.a, prev.b);
  for (std::size_t i = 0; i < config.num_patterns; ++i) {
    const OperandPair cur = patterns.next();
    const double y = sim.apply(cur.a, cur.b).energy_fj;
    const auto f =
        features(adder.width, prev.a, prev.b, cur.a, cur.b, clamp);
    for (int r = 0; r < nf; ++r) {
      for (int c = 0; c < nf; ++c)
        xtx[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] +=
            f[static_cast<std::size_t>(r)] * f[static_cast<std::size_t>(c)];
      xty[static_cast<std::size_t>(r)] +=
          f[static_cast<std::size_t>(r)] * y;
    }
    prev = cur;
  }
  return VosEnergyModel(adder.width, triad, solve_normal(xtx, xty), clamp);
}

EnergyFit evaluate_energy_model(const VosEnergyModel& model,
                                const AdderNetlist& adder,
                                const CellLibrary& lib,
                                std::size_t num_patterns,
                                std::uint64_t pattern_seed) {
  const DutNetlist dut = to_dut(adder);
  VosDutSim sim(dut, lib, model.triad());
  PatternStream patterns(PatternPolicy::kCarryBalanced, adder.width,
                         pattern_seed);
  OperandPair prev = patterns.next();
  sim.reset(prev.a, prev.b);

  double sum_y = 0.0;
  double sum_sq_err = 0.0;
  double sum_abs_err = 0.0;
  std::vector<double> ys;
  ys.reserve(num_patterns);
  for (std::size_t i = 0; i < num_patterns; ++i) {
    const OperandPair cur = patterns.next();
    const double y = sim.apply(cur.a, cur.b).energy_fj;
    const double yhat = model.predict_fj(prev.a, prev.b, cur.a, cur.b);
    sum_y += y;
    sum_sq_err += (y - yhat) * (y - yhat);
    sum_abs_err += std::abs(y - yhat);
    ys.push_back(y);
    prev = cur;
  }
  const double mean = sum_y / static_cast<double>(num_patterns);
  double ss_tot = 0.0;
  for (const double y : ys) ss_tot += (y - mean) * (y - mean);

  EnergyFit fit;
  fit.mean_energy_fj = mean;
  fit.mean_abs_error_fj = sum_abs_err / static_cast<double>(num_patterns);
  fit.r_squared = ss_tot > 0.0 ? 1.0 - sum_sq_err / ss_tot : 1.0;
  return fit;
}

}  // namespace vosim
