// Algorithm-level energy model — the energy companion to the paper's
// statistical error model: once an application is mapped onto the
// approximate operator model, it still needs the energy side of the
// trade-off without running the timing simulator. Per-operation energy
// is regressed on cheap input features (operand switching activity and
// the completed carry-chain length) against the event-driven simulator.
#ifndef VOSIM_MODEL_ENERGY_MODEL_HPP
#define VOSIM_MODEL_ENERGY_MODEL_HPP

#include <array>
#include <cstdint>

#include "src/characterize/patterns.hpp"
#include "src/netlist/adders.hpp"
#include "src/sim/event_sim.hpp"
#include "src/tech/operating_point.hpp"

namespace vosim {

/// Number of regression features (incl. the intercept): {1, toggled
/// input bits, bounded carry-chain length, toggled sum bits, propagate
/// count, generate count}. All are computable at algorithm level without
/// simulation.
inline constexpr int energy_feature_count = 6;

/// Linear per-op energy estimator over cheap input features, fitted per
/// operating triad.
class VosEnergyModel {
 public:
  VosEnergyModel(int width, OperatingTriad triad,
                 std::array<double, energy_feature_count> coefficients,
                 double chain_clamp);

  /// Predicted energy (fJ) of computing a+b right after prev_a+prev_b.
  double predict_fj(std::uint64_t prev_a, std::uint64_t prev_b,
                    std::uint64_t a, std::uint64_t b) const;

  int width() const noexcept { return width_; }
  const OperatingTriad& triad() const noexcept { return triad_; }
  const std::array<double, energy_feature_count>& coefficients()
      const noexcept {
    return coef_;
  }
  /// Carry chains longer than this never complete inside the clock
  /// window; the feature is clamped here (fit and predict agree).
  double chain_clamp() const noexcept { return chain_clamp_; }

 private:
  int width_;
  OperatingTriad triad_;
  std::array<double, energy_feature_count> coef_;
  double chain_clamp_;
};

/// Fit quality of an energy model on held-out patterns.
struct EnergyFit {
  double r_squared = 0.0;
  double mean_abs_error_fj = 0.0;
  double mean_energy_fj = 0.0;
};

/// Training knobs.
struct EnergyTrainerConfig {
  std::size_t num_patterns = 8000;
  PatternPolicy policy = PatternPolicy::kCarryBalanced;
  std::uint64_t pattern_seed = 42;
  TimingSimConfig sim_config = {};
};

/// Least-squares fit against the timing simulator at one triad.
VosEnergyModel train_energy_model(const AdderNetlist& adder,
                                  const CellLibrary& lib,
                                  const OperatingTriad& triad,
                                  const EnergyTrainerConfig& config = {});

/// Evaluates a model against the simulator on a held-out stream.
EnergyFit evaluate_energy_model(const VosEnergyModel& model,
                                const AdderNetlist& adder,
                                const CellLibrary& lib,
                                std::size_t num_patterns = 8000,
                                std::uint64_t pattern_seed = 1729);

}  // namespace vosim

#endif  // VOSIM_MODEL_ENERGY_MODEL_HPP
