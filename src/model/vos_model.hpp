// The statistical VOS operator model (paper Fig. 6 right-hand side):
// a drop-in functional stand-in for the hardware adder at a given triad,
// usable at algorithm level without any timing simulation.
#ifndef VOSIM_MODEL_VOS_MODEL_HPP
#define VOSIM_MODEL_VOS_MODEL_HPP

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "src/model/distance.hpp"
#include "src/model/prob_table.hpp"
#include "src/model/trainer.hpp"
#include "src/netlist/adders.hpp"
#include "src/sim/event_sim.hpp"
#include "src/tech/operating_point.hpp"

namespace vosim {

/// Statistical approximate adder for one operating triad.
///
/// add(): extract Cth_max of the operands, sample the achieved chain
/// Cmax from the trained table, and return the window-limited sum
/// (the three inference steps of Section IV).
class VosAdderModel {
 public:
  VosAdderModel(int width, OperatingTriad triad, DistanceMetric metric,
                CarryChainProbTable table);

  std::uint64_t add(std::uint64_t a, std::uint64_t b, Rng& rng) const;

  int width() const noexcept { return width_; }
  const OperatingTriad& triad() const noexcept { return triad_; }
  DistanceMetric metric() const noexcept { return metric_; }
  const CarryChainProbTable& table() const noexcept { return table_; }
  /// True when the model degenerates to an exact adder.
  bool is_exact() const { return table_.is_identity(); }

  void save(std::ostream& os) const;
  static VosAdderModel load(std::istream& is);

 private:
  int width_;
  OperatingTriad triad_;
  DistanceMetric metric_;
  CarryChainProbTable table_;
};

/// Trains a model against a hardware oracle at one triad.
VosAdderModel train_vos_model(int width, const OperatingTriad& triad,
                              const HardwareOracle& oracle,
                              const TrainerConfig& config = {});

/// A family of models for one adder across a triad sweep.
class ModelLibrary {
 public:
  ModelLibrary() = default;

  void insert(VosAdderModel model);
  std::size_t size() const noexcept { return models_.size(); }
  const std::vector<VosAdderModel>& models() const noexcept {
    return models_;
  }
  /// Model for an exact triad match, if present.
  const VosAdderModel* find(const OperatingTriad& triad) const;

  void save(std::ostream& os) const;
  static ModelLibrary load(std::istream& is);

 private:
  std::vector<VosAdderModel> models_;
};

/// Trains one model per triad against the event-driven simulator
/// (parallel over triads, deterministic).
ModelLibrary train_model_library(const AdderNetlist& adder,
                                 const CellLibrary& lib,
                                 const std::vector<OperatingTriad>& triads,
                                 const TrainerConfig& config = {},
                                 const TimingSimConfig& sim_config = {},
                                 unsigned threads = 0);

}  // namespace vosim

#endif  // VOSIM_MODEL_VOS_MODEL_HPP
