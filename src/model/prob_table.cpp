#include "src/model/prob_table.hpp"

#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <string>

#include "src/util/contracts.hpp"

namespace vosim {

CarryChainProbTable::CarryChainProbTable(int width) : width_(width) {
  VOSIM_EXPECTS(width >= 1 && width <= 63);
  const auto n = static_cast<std::size_t>(width) + 1;
  p_.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t l = 0; l < n; ++l) p_[l][l] = 1.0;
}

CarryChainProbTable CarryChainProbTable::from_counts(
    int width, const std::vector<std::vector<std::uint64_t>>& counts) {
  CarryChainProbTable t(width);
  const auto n = static_cast<std::size_t>(width) + 1;
  VOSIM_EXPECTS(counts.size() == n);
  for (std::size_t l = 0; l < n; ++l) {
    VOSIM_EXPECTS(counts[l].size() == n);
    std::uint64_t total = 0;
    for (std::size_t k = 0; k < n; ++k) {
      // Lower-triangular: the model never *extends* a chain.
      VOSIM_EXPECTS(k <= l || counts[l][k] == 0);
      total += counts[l][k];
    }
    if (total == 0) continue;  // keep the identity column
    for (std::size_t k = 0; k < n; ++k)
      t.p_[l][k] =
          static_cast<double>(counts[l][k]) / static_cast<double>(total);
  }
  return t;
}

double CarryChainProbTable::prob(int k, int l) const {
  VOSIM_EXPECTS(k >= 0 && k <= width_ && l >= 0 && l <= width_);
  return p_[static_cast<std::size_t>(l)][static_cast<std::size_t>(k)];
}

int CarryChainProbTable::sample(int cth, Rng& rng) const {
  VOSIM_EXPECTS(cth >= 0 && cth <= width_);
  const auto& col = p_[static_cast<std::size_t>(cth)];
  double u = rng.uniform();
  for (int k = 0; k <= cth; ++k) {
    u -= col[static_cast<std::size_t>(k)];
    if (u < 0.0) return k;
  }
  return cth;  // numerical remainder lands on the diagonal
}

double CarryChainProbTable::expected(int cth) const {
  VOSIM_EXPECTS(cth >= 0 && cth <= width_);
  const auto& col = p_[static_cast<std::size_t>(cth)];
  double e = 0.0;
  for (std::size_t k = 0; k < col.size(); ++k)
    e += static_cast<double>(k) * col[k];
  return e;
}

bool CarryChainProbTable::is_identity(double tol) const {
  for (int l = 0; l <= width_; ++l)
    if (std::abs(prob(l, l) - 1.0) > tol) return false;
  return true;
}

TextTable CarryChainProbTable::to_table(int precision) const {
  std::vector<std::string> header{"Cmax\\Cth"};
  for (int l = 0; l <= width_; ++l) header.push_back(std::to_string(l));
  TextTable t(header);
  for (int k = 0; k <= width_; ++k) {
    std::vector<std::string> row{std::to_string(k)};
    for (int l = 0; l <= width_; ++l)
      row.push_back(format_double(prob(k, l), precision));
    t.add_row(std::move(row));
  }
  return t;
}

void CarryChainProbTable::save(std::ostream& os) const {
  // max_digits10 so probabilities round-trip bit-exactly.
  const auto old_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  os << "carry_chain_prob_table v1 " << width_ << "\n";
  for (int l = 0; l <= width_; ++l) {
    for (int k = 0; k <= width_; ++k) {
      if (k != 0) os << ' ';
      os << prob(k, l);
    }
    os << "\n";
  }
  os.precision(old_precision);
}

CarryChainProbTable CarryChainProbTable::load(std::istream& is) {
  std::string magic;
  std::string version;
  int width = 0;
  is >> magic >> version >> width;
  if (!is || magic != "carry_chain_prob_table" || version != "v1")
    throw std::runtime_error("bad carry-chain table header");
  CarryChainProbTable t(width);
  for (int l = 0; l <= width; ++l)
    for (int k = 0; k <= width; ++k) {
      double v = 0.0;
      is >> v;
      if (!is) throw std::runtime_error("truncated carry-chain table");
      t.p_[static_cast<std::size_t>(l)][static_cast<std::size_t>(k)] = v;
    }
  return t;
}

}  // namespace vosim
