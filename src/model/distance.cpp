#include "src/model/distance.hpp"

#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"

namespace vosim {

std::string distance_metric_name(DistanceMetric metric) {
  switch (metric) {
    case DistanceMetric::kMse: return "MSE distance";
    case DistanceMetric::kHamming: return "Hamming distance";
    case DistanceMetric::kWeightedHamming: return "Weighted Hamming";
  }
  return "?";
}

double distance(std::uint64_t x, std::uint64_t y, int nbits,
                DistanceMetric metric) {
  VOSIM_EXPECTS(nbits >= 1 && nbits <= 64);
  switch (metric) {
    case DistanceMetric::kMse: {
      const double d = static_cast<double>(x & mask_n(nbits)) -
                       static_cast<double>(y & mask_n(nbits));
      return d * d;
    }
    case DistanceMetric::kHamming:
      return static_cast<double>(hamming_distance(x, y, nbits));
    case DistanceMetric::kWeightedHamming: {
      std::uint64_t diff = (x ^ y) & mask_n(nbits);
      double w = 0.0;
      while (diff != 0) {
        const int i = std::countr_zero(diff);
        w += static_cast<double>(1ULL << i);
        diff &= diff - 1;
      }
      return w;
    }
  }
  return 0.0;
}

}  // namespace vosim
