#include "src/model/windowed_add.hpp"

#include "src/model/carry_chain.hpp"
#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"

namespace vosim {

std::uint64_t windowed_add(std::uint64_t a, std::uint64_t b, int width,
                           int window) {
  VOSIM_EXPECTS(width >= 1 && width <= max_word_bits);
  VOSIM_EXPECTS(window >= 0 && window <= width);
  VOSIM_EXPECTS((a & ~mask_n(width)) == 0 && (b & ~mask_n(width)) == 0);
  const std::uint64_t g = a & b;
  const std::uint64_t p = a ^ b;

  // Single pass tracking the nearest live generate: the carry into bit i
  // exists exactly when a generate sits at most `window` positions below
  // with an unbroken propagate run in between (the nearest origin gives
  // the minimal travel distance, which is what the window bounds).
  std::uint64_t result = 0;
  int origin = -1;
  for (int i = 0; i <= width; ++i) {
    const bool carry_in = origin >= 0 && (i - origin) <= window;
    if (i == width) {
      if (carry_in) result |= (1ULL << width);
      break;
    }
    const int pi = bit_of(p, i);
    if ((pi != 0) != carry_in) result |= (1ULL << i);
    if (bit_of(g, i) != 0) {
      origin = i;
    } else if (pi == 0) {
      origin = -1;
    }
  }
  return result;
}

}  // namespace vosim
