// Carry-chain analysis (paper Section IV).
//
// The statistical model's single parameter for adders is the longest
// carry-propagation chain: VOS breaks the longest combinational paths
// first, and those are exactly the long carry chains.
#ifndef VOSIM_MODEL_CARRY_CHAIN_HPP
#define VOSIM_MODEL_CARRY_CHAIN_HPP

#include <cstdint>
#include <vector>

namespace vosim {

/// Theoretical maximal carry chain Cth_max of the addition a+b on `width`
/// bits: the largest number of positions any single carry travels. A
/// carry born at a generate position j (a_j = b_j = 1) travels through
/// the run of propagate positions (a^b) above it and dies one past the
/// run, so its length is 1 + run(p, j+1), capped by the carry-out stage.
/// Range: 0 (no carry at all) .. width (carry crosses into cout).
int theoretical_max_carry_chain(std::uint64_t a, std::uint64_t b, int width);

/// Distance the carry entering bit position i has travelled (0 when no
/// carry enters bit i). Exposed for tests and bit-level analyses.
std::vector<int> carry_travel_distances(std::uint64_t a, std::uint64_t b,
                                        int width);

}  // namespace vosim

#endif  // VOSIM_MODEL_CARRY_CHAIN_HPP
