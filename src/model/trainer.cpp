#include "src/model/trainer.hpp"

#include "src/model/carry_chain.hpp"
#include "src/model/windowed_add.hpp"
#include "src/util/contracts.hpp"

namespace vosim {

int best_window(std::uint64_t a, std::uint64_t b, int width,
                std::uint64_t observed, DistanceMetric metric) {
  const int cth = theoretical_max_carry_chain(a, b, width);
  // Algorithm 1 iterates C from Cth_max down to 0 and keeps the last
  // window with dist <= best, so ties resolve to the smallest window —
  // the most pessimistic chain truncation consistent with the output.
  double best = -1.0;
  int best_c = cth;
  for (int c = cth; c >= 0; --c) {
    const std::uint64_t x = windowed_add(a, b, width, c);
    const double d = distance(observed, x, width + 1, metric);
    if (best < 0.0 || d <= best) {
      best = d;
      best_c = c;
    }
  }
  return best_c;
}

CarryChainProbTable train_carry_table(int width, const HardwareOracle& oracle,
                                      const TrainerConfig& config) {
  VOSIM_EXPECTS(config.num_patterns > 0);
  const auto n = static_cast<std::size_t>(width) + 1;
  std::vector<std::vector<std::uint64_t>> counts(
      n, std::vector<std::uint64_t>(n, 0));

  PatternStream patterns(config.policy, width, config.pattern_seed);
  for (std::size_t i = 0; i < config.num_patterns; ++i) {
    const OperandPair pat = patterns.next();
    const std::uint64_t observed = oracle(pat.a, pat.b);
    const int cth = theoretical_max_carry_chain(pat.a, pat.b, width);
    const int c = best_window(pat.a, pat.b, width, observed, config.metric);
    ++counts[static_cast<std::size_t>(cth)][static_cast<std::size_t>(c)];
  }
  return CarryChainProbTable::from_counts(width, counts);
}

}  // namespace vosim
