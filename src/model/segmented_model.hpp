// Segmented statistical model — an extension of the paper's Section IV
// model (its stated perspective: richer parameter sets Pi per operator).
//
// The base model truncates *all* carries with one sampled window, which
// fits the ripple adder's single serial chain but averages away the
// parallel-prefix adder's structure, where different output regions fail
// at different depths. The segmented model splits the output word into
// segments, learns one carry-window table per segment (conditioned on
// the longest carry *arriving in* that segment), and samples the
// segments independently at inference.
#ifndef VOSIM_MODEL_SEGMENTED_MODEL_HPP
#define VOSIM_MODEL_SEGMENTED_MODEL_HPP

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "src/model/prob_table.hpp"
#include "src/model/trainer.hpp"
#include "src/tech/operating_point.hpp"

namespace vosim {

/// Windowed addition with a per-segment carry window: the carry into bit
/// i survives when its travel distance is at most windows[segment(i)].
/// Segment s covers bits [bounds[s], bounds[s+1]); the carry-out belongs
/// to the last segment. bounds must start at 0 and end at width+1.
std::uint64_t segmented_windowed_add(std::uint64_t a, std::uint64_t b,
                                     int width,
                                     const std::vector<int>& bounds,
                                     const std::vector<int>& windows);

/// Longest carry travel distance into bits [lo, hi) of a+b (0 when no
/// carry reaches the segment). hi may be width+1 to include the
/// carry-out.
int max_chain_into_segment(std::uint64_t a, std::uint64_t b, int width,
                           int lo, int hi);

/// Equal-width segment boundaries over width+1 output bits.
std::vector<int> equal_segments(int width, int num_segments);

/// Per-segment statistical VOS adder model.
class SegmentedVosModel {
 public:
  SegmentedVosModel(int width, OperatingTriad triad,
                    std::vector<int> bounds,
                    std::vector<CarryChainProbTable> tables);

  std::uint64_t add(std::uint64_t a, std::uint64_t b, Rng& rng) const;

  int width() const noexcept { return width_; }
  int num_segments() const noexcept {
    return static_cast<int>(tables_.size());
  }
  const OperatingTriad& triad() const noexcept { return triad_; }
  const std::vector<int>& bounds() const noexcept { return bounds_; }
  const CarryChainProbTable& table(int segment) const;

  void save(std::ostream& os) const;
  static SegmentedVosModel load(std::istream& is);

 private:
  int width_;
  OperatingTriad triad_;
  std::vector<int> bounds_;
  std::vector<CarryChainProbTable> tables_;
};

/// Algorithm-1-style training, one table per segment: for every pattern
/// the best window of each segment is chosen by minimizing the distance
/// restricted to that segment's bits.
SegmentedVosModel train_segmented_model(int width,
                                        const OperatingTriad& triad,
                                        const HardwareOracle& oracle,
                                        int num_segments,
                                        const TrainerConfig& config = {});

}  // namespace vosim

#endif  // VOSIM_MODEL_SEGMENTED_MODEL_HPP
