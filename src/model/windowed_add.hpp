// The "modified adder" of the paper (Section IV): addition whose carries
// are only allowed to travel a bounded number of positions. With window
// C >= Cth_max the result is exact; C = 0 degenerates to a bitwise XOR.
#ifndef VOSIM_MODEL_WINDOWED_ADD_HPP
#define VOSIM_MODEL_WINDOWED_ADD_HPP

#include <cstdint>

namespace vosim {

/// add_modified(in1, in2, C): (width+1)-bit sum (carry-out in bit
/// `width`) where the carry into each position comes only from the
/// nearest generate within `window` positions below it.
std::uint64_t windowed_add(std::uint64_t a, std::uint64_t b, int width,
                           int window);

}  // namespace vosim

#endif  // VOSIM_MODEL_WINDOWED_ADD_HPP
