// The carry-propagation probability table P(Cmax = k | Cth_max = l) —
// the paper's Table I object. Lower-triangular (a chain cannot complete
// further than its theoretical length) and column-stochastic.
#ifndef VOSIM_MODEL_PROB_TABLE_HPP
#define VOSIM_MODEL_PROB_TABLE_HPP

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "src/util/rng.hpp"
#include "src/util/table.hpp"

namespace vosim {

/// Conditional distribution of the *achieved* maximal carry chain given
/// the input pair's theoretical one. Indices run 0..width inclusive.
class CarryChainProbTable {
 public:
  /// Identity table (every chain completes) for a given adder width.
  explicit CarryChainProbTable(int width);

  /// Builds from raw counts[k][l]; empty columns become identity.
  static CarryChainProbTable from_counts(
      int width, const std::vector<std::vector<std::uint64_t>>& counts);

  int width() const noexcept { return width_; }

  /// P(Cmax = k | Cth_max = l).
  double prob(int k, int l) const;

  /// Samples Cmax for a given theoretical chain length.
  int sample(int cth, Rng& rng) const;

  /// Expected achieved chain length for a column.
  double expected(int cth) const;

  /// True when every column is a point mass at k == l.
  bool is_identity(double tol = 1e-12) const;

  /// Table I-style rendering.
  TextTable to_table(int precision = 3) const;

  /// Plain-text serialization (round-trips with load()).
  void save(std::ostream& os) const;
  static CarryChainProbTable load(std::istream& is);

  friend bool operator==(const CarryChainProbTable&,
                         const CarryChainProbTable&) = default;

 private:
  int width_;
  /// p_[l][k]: column-major so sampling scans one contiguous column.
  std::vector<std::vector<double>> p_;
};

}  // namespace vosim

#endif  // VOSIM_MODEL_PROB_TABLE_HPP
