#include "src/model/evaluation.hpp"

#include <cmath>

#include "src/characterize/metrics.hpp"
#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"

namespace vosim {

FidelityResult evaluate_fidelity(const VosAdderModel& model,
                                 const HardwareOracle& oracle,
                                 const FidelityConfig& config) {
  VOSIM_EXPECTS(config.num_patterns > 0);
  const int width = model.width();
  PatternStream patterns(config.policy, width, config.pattern_seed);
  Rng model_rng(config.model_rng_seed);

  ErrorAccumulator model_vs_oracle(width + 1);  // oracle as reference
  ErrorAccumulator model_vs_exact(width + 1);
  ErrorAccumulator oracle_vs_exact(width + 1);

  for (std::size_t i = 0; i < config.num_patterns; ++i) {
    const OperandPair pat = patterns.next();
    const std::uint64_t hw = oracle(pat.a, pat.b);
    const std::uint64_t md = model.add(pat.a, pat.b, model_rng);
    const std::uint64_t gold = exact_add(pat.a, pat.b, width);
    model_vs_oracle.add(hw, md);
    model_vs_exact.add(gold, md);
    oracle_vs_exact.add(gold, hw);
  }

  FidelityResult out;
  out.triad = model.triad();
  out.snr_db = model_vs_oracle.snr_db();
  out.normalized_hamming = model_vs_oracle.normalized_hamming();
  out.mse = model_vs_oracle.mse();
  out.model_ber = model_vs_exact.ber();
  out.oracle_ber = oracle_vs_exact.ber();
  out.exact_match = model_vs_oracle.ber() == 0.0;
  return out;
}

FidelitySummary summarize_fidelity(const std::vector<FidelityResult>& runs) {
  FidelitySummary s;
  for (const FidelityResult& r : runs) {
    // A triad where the hardware never errs and the model matches it
    // exactly says nothing about error modeling; Fig. 7 statistics are
    // over the informative triads.
    if (r.oracle_ber == 0.0 && r.exact_match) {
      ++s.error_free_triads;
      continue;
    }
    ++s.evaluated_triads;
    s.mean_snr_db += std::min(r.snr_db, snr_display_cap_db);
    s.mean_normalized_hamming += r.normalized_hamming;
  }
  if (s.evaluated_triads > 0) {
    s.mean_snr_db /= s.evaluated_triads;
    s.mean_normalized_hamming /= s.evaluated_triads;
  }
  return s;
}

}  // namespace vosim
