#include "src/model/carry_chain.hpp"

#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"

namespace vosim {

int theoretical_max_carry_chain(std::uint64_t a, std::uint64_t b,
                                int width) {
  VOSIM_EXPECTS(width >= 1 && width <= max_word_bits);
  VOSIM_EXPECTS((a & ~mask_n(width)) == 0 && (b & ~mask_n(width)) == 0);
  const std::uint64_t g = a & b;
  const std::uint64_t p = a ^ b;
  // run[i] = length of the propagate run starting at bit i (upwards).
  // One downward pass keeps this O(width).
  int longest = 0;
  int run_above = 0;  // run length starting at bit i+1
  for (int i = width - 1; i >= 0; --i) {
    if (bit_of(g, i) != 0) {
      // Chain: born at i, rides the propagate run above, dies one past.
      const int len = 1 + run_above;
      if (len > longest) longest = len;
    }
    run_above = (bit_of(p, i) != 0) ? run_above + 1 : 0;
  }
  // A chain may not extend past the carry-out stage: born at j it can
  // travel at most width - j positions. The formula already respects
  // this because run_above never extends past bit width-1.
  VOSIM_ENSURES(longest >= 0 && longest <= width);
  return longest;
}

std::vector<int> carry_travel_distances(std::uint64_t a, std::uint64_t b,
                                        int width) {
  VOSIM_EXPECTS(width >= 1 && width <= max_word_bits);
  std::vector<int> dist(static_cast<std::size_t>(width) + 1, 0);
  const std::uint64_t g = a & b;
  const std::uint64_t p = a ^ b;
  int origin = -1;  // nearest live generate below the current position
  for (int i = 0; i <= width; ++i) {
    if (origin >= 0) dist[static_cast<std::size_t>(i)] = i - origin;
    if (i == width) break;
    if (bit_of(g, i) != 0) {
      origin = i;  // a nearer carry source dominates
    } else if (bit_of(p, i) == 0) {
      origin = -1;  // kill: the carry dies here
    }
  }
  return dist;
}

}  // namespace vosim
