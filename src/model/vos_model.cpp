#include "src/model/vos_model.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "src/model/carry_chain.hpp"
#include "src/model/windowed_add.hpp"
#include "src/netlist/dut.hpp"
#include "src/sim/vos_dut.hpp"
#include "src/util/contracts.hpp"
#include "src/util/parallel.hpp"

namespace vosim {

VosAdderModel::VosAdderModel(int width, OperatingTriad triad,
                             DistanceMetric metric, CarryChainProbTable table)
    : width_(width), triad_(triad), metric_(metric), table_(std::move(table)) {
  VOSIM_EXPECTS(table_.width() == width_);
}

std::uint64_t VosAdderModel::add(std::uint64_t a, std::uint64_t b,
                                 Rng& rng) const {
  const int cth = theoretical_max_carry_chain(a, b, width_);
  const int cmax = table_.sample(cth, rng);
  return windowed_add(a, b, width_, cmax);
}

void VosAdderModel::save(std::ostream& os) const {
  // max_digits10 so the triad doubles round-trip bit-exactly and
  // ModelLibrary::find() matches after load.
  const auto old_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  os << "vos_adder_model v1 " << width_ << " " << triad_.tclk_ns << " "
     << triad_.vdd_v << " " << triad_.vbb_v << " "
     << static_cast<int>(metric_) << "\n";
  os.precision(old_precision);
  table_.save(os);
}

VosAdderModel VosAdderModel::load(std::istream& is) {
  std::string magic;
  std::string version;
  int width = 0;
  OperatingTriad triad;
  int metric = 0;
  is >> magic >> version >> width >> triad.tclk_ns >> triad.vdd_v >>
      triad.vbb_v >> metric;
  if (!is || magic != "vos_adder_model" || version != "v1")
    throw std::runtime_error("bad VOS model header");
  CarryChainProbTable table = CarryChainProbTable::load(is);
  return VosAdderModel(width, triad, static_cast<DistanceMetric>(metric),
                       std::move(table));
}

VosAdderModel train_vos_model(int width, const OperatingTriad& triad,
                              const HardwareOracle& oracle,
                              const TrainerConfig& config) {
  return VosAdderModel(width, triad, config.metric,
                       train_carry_table(width, oracle, config));
}

void ModelLibrary::insert(VosAdderModel model) {
  models_.push_back(std::move(model));
}

const VosAdderModel* ModelLibrary::find(const OperatingTriad& triad) const {
  for (const VosAdderModel& m : models_)
    if (m.triad() == triad) return &m;
  return nullptr;
}

void ModelLibrary::save(std::ostream& os) const {
  os << "vos_model_library v1 " << models_.size() << "\n";
  for (const VosAdderModel& m : models_) m.save(os);
}

ModelLibrary ModelLibrary::load(std::istream& is) {
  std::string magic;
  std::string version;
  std::size_t count = 0;
  is >> magic >> version >> count;
  if (!is || magic != "vos_model_library" || version != "v1")
    throw std::runtime_error("bad model library header");
  ModelLibrary lib;
  for (std::size_t i = 0; i < count; ++i)
    lib.insert(VosAdderModel::load(is));
  return lib;
}

ModelLibrary train_model_library(const AdderNetlist& adder,
                                 const CellLibrary& lib,
                                 const std::vector<OperatingTriad>& triads,
                                 const TrainerConfig& config,
                                 const TimingSimConfig& sim_config,
                                 unsigned threads) {
  std::vector<std::optional<VosAdderModel>> slots(triads.size());
  parallel_for(
      triads.size(),
      [&](std::size_t t) {
        const DutNetlist dut = to_dut(adder);
        VosDutSim sim(dut, lib, triads[t], sim_config);
        const HardwareOracle oracle = [&sim](std::uint64_t a,
                                             std::uint64_t b) {
          return sim.apply(a, b).sampled;
        };
        slots[t] = train_vos_model(adder.width, triads[t], oracle, config);
      },
      threads);

  ModelLibrary out;
  for (auto& slot : slots) {
    VOSIM_ENSURES(slot.has_value());
    out.insert(std::move(*slot));
  }
  return out;
}

}  // namespace vosim
