#include "src/sim/levelized_sim.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "src/netlist/eval.hpp"
#include "src/sta/sta.hpp"
#include "src/tech/gate_timing.hpp"
#include "src/util/contracts.hpp"
#include "src/util/rng.hpp"

namespace vosim {

namespace {

/// Packed 64-lane evaluation of a cell function. Lane-wise identical to
/// cell_truth(kind) — the SimEngine.PackedEvalMatchesTruthTables test
/// checks every kind against every minterm.
std::uint64_t eval_packed(CellKind kind, std::uint64_t a, std::uint64_t b,
                          std::uint64_t c) {
  switch (kind) {
    case CellKind::kInv: return ~a;
    case CellKind::kBuf: return a;
    case CellKind::kNand2: return ~(a & b);
    case CellKind::kNor2: return ~(a | b);
    case CellKind::kAnd2: return a & b;
    case CellKind::kOr2: return a | b;
    case CellKind::kXor2: return a ^ b;
    case CellKind::kXnor2: return ~(a ^ b);
    case CellKind::kAoi21: return ~((a & b) | c);
    case CellKind::kOai21: return ~((a | b) & c);
    case CellKind::kAo21: return (a & b) | c;
    case CellKind::kMaj3: return (a & b) | (c & (a | b));
    case CellKind::kTieLo: return 0;
    case CellKind::kTieHi: return ~0ULL;
  }
  return 0;
}

std::uint64_t lane_mask(std::size_t lanes) {
  return lanes >= 64 ? ~0ULL : ((1ULL << lanes) - 1ULL);
}

/// Accounting policy for one fixed clock threshold: fills per-lane
/// StepResults and reports window membership so the caller can track
/// the sampled (parity-of-commits-in-window) value.
struct SingleThresholdAcct {
  double tclk_ps;
  StepResult* results;

  bool commit(NetId /*net*/, int k, double tc, double energy) {
    StepResult& r = results[k];
    ++r.toggles_total;
    r.total_energy_fj += energy;
    r.settle_time_ps = std::max(r.settle_time_ps, tc);
    if (tc < tclk_ps) {
      ++r.toggles_in_window;
      r.window_energy_fj += energy;
      return true;
    }
    return false;
  }
};

/// Accounting policy for a whole ascending threshold set: every commit
/// lands in the bucket of the first threshold it misses, so one prefix
/// pass later yields per-threshold window energy/toggle counts, and an
/// XOR-difference per primary output yields per-threshold sampled
/// words (a net's sampled value at τ is its stale value XOR the parity
/// of its commits before τ).
struct MultiThresholdAcct {
  std::span<const double> thresholds_ps;
  double* ediff;              // (nthr+1) × kLanes, bucket-major
  std::uint32_t* tdiff;       // (nthr+1) × kLanes
  std::uint64_t* sdiff;       // nPO × (nthr+1)
  double* tot_e;              // per lane
  std::uint32_t* tot_t;       // per lane
  double* settle;             // per lane
  const std::int32_t* po_index;

  bool commit(NetId net, int k, double tc, double energy) {
    const auto b = static_cast<std::size_t>(
        std::upper_bound(thresholds_ps.begin(), thresholds_ps.end(), tc) -
        thresholds_ps.begin());
    const std::size_t lanes = LevelizedSimulator::kLanes;
    ediff[b * lanes + static_cast<std::size_t>(k)] += energy;
    ++tdiff[b * lanes + static_cast<std::size_t>(k)];
    tot_e[k] += energy;
    ++tot_t[k];
    settle[k] = std::max(settle[k], tc);
    const std::int32_t po = po_index[net];
    if (po >= 0)
      sdiff[static_cast<std::size_t>(po) * (thresholds_ps.size() + 1) + b] ^=
          1ULL << k;
    return false;  // no single sampled word is maintained in sweep mode
  }
};

}  // namespace

LevelizedSimulator::LevelizedSimulator(const Netlist& netlist,
                                       const CellLibrary& lib,
                                       const OperatingTriad& op,
                                       const TimingSimConfig& config)
    : netlist_(netlist), op_(op) {
  VOSIM_EXPECTS(netlist.finalized());
  VOSIM_EXPECTS(op.tclk_ns > 0.0);
  VOSIM_EXPECTS(config.variation_sigma >= 0.0);
  tclk_ps_ = op.tclk_ns * 1e3;

  const std::vector<double> loads = netlist.compute_net_loads(lib);
  const TransistorModel& tm = lib.transistor_model();

  // Identical delay assignment (and variation-sample sequence) to the
  // event engine: a given (sigma, seed) names the same die under both
  // backends, so cross-backend comparisons see one circuit.
  gate_delay_ps_.resize(netlist.num_gates());
  Rng vrng(config.variation_seed);
  for (GateId gid = 0; gid < netlist.num_gates(); ++gid) {
    const Gate& g = netlist.gate(gid);
    double d = gate_delay_ps(lib.cell(g.kind), loads[g.out], tm, op_);
    if (config.variation_sigma > 0.0)
      d *= std::exp(config.variation_sigma * vrng.gaussian());
    gate_delay_ps_[gid] = d;
  }

  net_energy_fj_.resize(netlist.num_nets());
  for (NetId n = 0; n < netlist.num_nets(); ++n)
    net_energy_fj_[n] = toggle_energy_fj(loads[n], op_.vdd_v);

  double leak_nw = netlist.cell_leakage_nw(lib);
  leak_nw *= tm.leakage_scale(op_.vdd_v, op_.vbb_v);
  leakage_energy_fj_ = leak_nw * 1e-3 * tclk_ps_ * 1e-3;  // nW·ps → fJ

  arrival_ps_ = arrival_times_ps(netlist, gate_delay_ps_);
  for (const NetId po : netlist.primary_outputs())
    critical_path_ps_ = std::max(critical_path_ps_, arrival_ps_[po]);

  settled_w_.assign(netlist.num_nets(), 0);
  stale_w_.assign(netlist.num_nets(), 0);
  sampled_w_.assign(netlist.num_nets(), 0);
  time_ps_.assign(netlist.num_nets() * kLanes, 0.0);
  pulsing_w_.assign(netlist.num_nets(), 0);
  pulse_start_ps_.assign(netlist.num_nets() * kLanes, 0.0);
  pulse_end_ps_.assign(netlist.num_nets() * kLanes, 0.0);
  pulsing2_w_.assign(netlist.num_nets(), 0);
  pulse2_start_ps_.assign(netlist.num_nets() * kLanes, 0.0);
  pulse2_end_ps_.assign(netlist.num_nets() * kLanes, 0.0);

  po_index_.assign(netlist.num_nets(), -1);
  const auto pos = netlist.primary_outputs();
  for (std::size_t j = 0; j < pos.size(); ++j)
    po_index_[pos[j]] = static_cast<std::int32_t>(j);

  // Establish a consistent all-zero-input state.
  std::vector<std::uint8_t> zeros(netlist.primary_inputs().size(), 0);
  reset(zeros);
}

void LevelizedSimulator::reset(std::span<const std::uint8_t> inputs) {
  VOSIM_EXPECTS(inputs.size() == netlist_.primary_inputs().size());
  state_ = evaluate_logic(netlist_, inputs);
  sampled_state_ = state_;
}

StepResult LevelizedSimulator::step(std::span<const std::uint8_t> inputs) {
  const auto pis = netlist_.primary_inputs();
  VOSIM_EXPECTS(inputs.size() == pis.size());
  for (std::size_t j = 0; j < pis.size(); ++j)
    settled_w_[pis[j]] = inputs[j] ? 1ULL : 0ULL;
  StepResult result;
  run_lanes(1, {&result, 1});
  return result;
}

StepResult LevelizedSimulator::step_cycle(
    std::span<const std::uint8_t> inputs) {
  const auto pis = netlist_.primary_inputs();
  VOSIM_EXPECTS(inputs.size() == pis.size());
  for (std::size_t j = 0; j < pis.size(); ++j)
    settled_w_[pis[j]] = inputs[j] ? 1ULL : 0ULL;
  StepResult result;
  run_lanes(1, {&result, 1}, /*truncate_state=*/true);
  // Nothing is simulated past the edge in cycle mode.
  result.total_energy_fj = result.window_energy_fj;
  result.toggles_total = result.toggles_in_window;
  return result;
}

void LevelizedSimulator::step_batch(std::span<const std::uint8_t> inputs,
                                    std::size_t count,
                                    std::span<StepResult> results) {
  const auto pis = netlist_.primary_inputs();
  const std::size_t npis = pis.size();
  VOSIM_EXPECTS(inputs.size() == count * npis);
  VOSIM_EXPECTS(results.size() >= count);
  std::size_t done = 0;
  while (done < count) {
    const std::size_t lanes = std::min(kLanes, count - done);
    for (std::size_t j = 0; j < npis; ++j) {
      std::uint64_t w = 0;
      for (std::size_t k = 0; k < lanes; ++k)
        if (inputs[(done + k) * npis + j]) w |= 1ULL << k;
      settled_w_[pis[j]] = w;
    }
    run_lanes(lanes, results.subspan(done, lanes));
    done += lanes;
  }
}

void LevelizedSimulator::step_batch_sweep(
    std::span<const std::uint8_t> inputs, std::size_t count,
    std::span<const double> thresholds_ps, std::span<StepResult> results) {
  const auto pis = netlist_.primary_inputs();
  const std::size_t npis = pis.size();
  const std::size_t nthr = thresholds_ps.size();
  VOSIM_EXPECTS(nthr > 0);
  VOSIM_EXPECTS(std::is_sorted(thresholds_ps.begin(), thresholds_ps.end()));
  VOSIM_EXPECTS(thresholds_ps.front() > 0.0);
  VOSIM_EXPECTS(inputs.size() == count * npis);
  VOSIM_EXPECTS(results.size() >= count * nthr);
  std::size_t done = 0;
  while (done < count) {
    const std::size_t lanes = std::min(kLanes, count - done);
    for (std::size_t j = 0; j < npis; ++j) {
      std::uint64_t w = 0;
      for (std::size_t k = 0; k < lanes; ++k)
        if (inputs[(done + k) * npis + j]) w |= 1ULL << k;
      settled_w_[pis[j]] = w;
    }
    run_lanes_sweep(lanes, thresholds_ps,
                    results.subspan(done * nthr, lanes * nthr));
    done += lanes;
  }
}

template <class Acct>
void LevelizedSimulator::run_lanes_impl(std::size_t lanes, Acct& acct) {
  const std::uint64_t used = lane_mask(lanes);

  // Primary inputs: lane k's stale value is lane k-1's value (lane 0
  // continues from the carried state); input transitions commit at
  // t = 0, like the event engine's launch-edge commits. Sampled values
  // are tracked as stale XOR the parity of commits inside the window.
  for (const NetId pi : netlist_.primary_inputs()) {
    const std::uint64_t settled = settled_w_[pi] & used;
    settled_w_[pi] = settled;
    const std::uint64_t stale =
        ((settled << 1) | static_cast<std::uint64_t>(state_[pi] & 1)) & used;
    stale_w_[pi] = stale;
    pulsing_w_[pi] = 0;
    pulsing2_w_[pi] = 0;
    const double energy = net_energy_fj_[pi];
    double* t = &time_ps_[static_cast<std::size_t>(pi) * kLanes];
    std::uint64_t sampled = stale;
    std::uint64_t m = settled ^ stale;
    while (m != 0) {
      const int k = std::countr_zero(m);
      m &= m - 1;
      t[k] = 0.0;
      if (acct.commit(pi, k, 0.0, energy)) sampled ^= 1ULL << k;
    }
    sampled_w_[pi] = sampled;
  }

  // One levelized pass. Values: packed 64-lane evaluation per gate.
  // Timing: each lane with input activity runs a miniature event
  // simulation of just this gate over its ≤6 input events (one flip
  // per changed input at its final transition time, a flip-and-return
  // pair per pulsing input), with the event engine's inertial rule —
  // in binary logic a scheduled commit is only ever cancelled (input
  // pulse shorter than the gate delay), never rescheduled. Commits
  // yield the output's transition time, glitch-pulse window, toggle
  // energy, and the value the capture register samples at Tclk.
  //
  // The hot path dispatches lanes by changed-input count using packed
  // subset words W[s] (the gate function with the inputs in s still at
  // their stale values, evaluated for all 64 lanes at once): a
  // non-sensitized single change costs nothing, sensitized one- and
  // two-change lanes collapse to a handful of scalar operations, and
  // only lanes fed by a glitch pulse take the generic event walk.
  //
  // The approximations relative to the full event engine: a changed
  // input is forwarded as one transition at its commit time — or, when
  // it bounced on the way to the settled value, as its first flip plus
  // one return pulse (middle bounces of longer chatter are merged) —
  // and an unchanged output's commits are forwarded as one merged
  // pulse.
  for (const GateId gid : netlist_.topo_order()) {
    const Gate& g = netlist_.gate(gid);
    const NetId out = g.out;
    const int n = g.num_inputs;
    const unsigned full = (1u << n) - 1u;

    std::uint64_t in_settled[3] = {0, 0, 0};
    std::uint64_t in_stale[3] = {0, 0, 0};
    std::uint64_t in_changed[3] = {0, 0, 0};
    std::uint64_t in_pulsing[3] = {0, 0, 0};
    std::uint64_t in_pulsing2[3] = {0, 0, 0};
    const double* in_time[3] = {nullptr, nullptr, nullptr};
    const double* in_ps[3] = {nullptr, nullptr, nullptr};
    const double* in_pe[3] = {nullptr, nullptr, nullptr};
    const double* in_ps2[3] = {nullptr, nullptr, nullptr};
    const double* in_pe2[3] = {nullptr, nullptr, nullptr};
    std::uint64_t any_pulse = 0;
    for (int i = 0; i < n; ++i) {
      const NetId in = g.in[i];
      const auto base = static_cast<std::size_t>(in) * kLanes;
      in_settled[i] = settled_w_[in];
      in_stale[i] = stale_w_[in];
      in_changed[i] = in_settled[i] ^ in_stale[i];
      in_pulsing[i] = pulsing_w_[in];
      in_pulsing2[i] = pulsing2_w_[in];
      in_time[i] = &time_ps_[base];
      in_ps[i] = &pulse_start_ps_[base];
      in_pe[i] = &pulse_end_ps_[base];
      in_ps2[i] = &pulse2_start_ps_[base];
      in_pe2[i] = &pulse2_end_ps_[base];
      any_pulse |= in_pulsing[i] | in_pulsing2[i];
    }

    // W[s]: packed gate value with the inputs in subset s still stale.
    std::uint64_t W[8];
    for (unsigned s = 0; s <= full; ++s) {
      const std::uint64_t wa =
          n > 0 ? ((s & 1u) ? in_stale[0] : in_settled[0]) : 0;
      const std::uint64_t wb =
          n > 1 ? ((s & 2u) ? in_stale[1] : in_settled[1]) : 0;
      const std::uint64_t wc =
          n > 2 ? ((s & 4u) ? in_stale[2] : in_settled[2]) : 0;
      W[s] = eval_packed(g.kind, wa, wb, wc) & used;
    }
    const std::uint64_t settled = W[0];
    settled_w_[out] = settled;
    const std::uint64_t stale =
        ((settled << 1) | static_cast<std::uint64_t>(state_[out] & 1)) & used;
    stale_w_[out] = stale;
    const std::uint64_t changed = settled ^ stale;

    std::uint64_t sampled = stale;
    std::uint64_t pulsing = 0;
    std::uint64_t pulsing2 = 0;
    std::uint64_t committed = 0;  // lanes whose output committed a flip
    const double delay = gate_delay_ps_[gid];
    const double energy = net_energy_fj_[out];
    const auto base_out = static_cast<std::size_t>(out) * kLanes;
    double* tout = &time_ps_[base_out];
    double* pout_s = &pulse_start_ps_[base_out];
    double* pout_e = &pulse_end_ps_[base_out];
    double* pout2_s = &pulse2_start_ps_[base_out];
    double* pout2_e = &pulse2_end_ps_[base_out];

    // Changed-input count masks, pulse-free lanes only.
    const std::uint64_t ch0 = in_changed[0];
    const std::uint64_t ch1 = in_changed[1];
    const std::uint64_t ch2 = in_changed[2];
    const std::uint64_t pairs = (ch0 & ch1) | (ch0 & ch2) | (ch1 & ch2);
    const std::uint64_t three = ch0 & ch1 & ch2 & ~any_pulse & used;
    const std::uint64_t two = pairs & ~(ch0 & ch1 & ch2) & ~any_pulse & used;
    const std::uint64_t one =
        (ch0 ^ ch1 ^ ch2) & ~pairs & ~any_pulse & used;

    // Exactly one changed input: a sensitized lane commits once at
    // t + delay; a non-sensitized lane does nothing at all.
    for (int i = 0; i < n; ++i) {
      std::uint64_t m = one & in_changed[i] & (W[1u << i] ^ settled);
      while (m != 0) {
        const int k = std::countr_zero(m);
        m &= m - 1;
        const double tc = in_time[i][k] + delay;
        if (acct.commit(out, k, tc, energy)) sampled ^= 1ULL << k;
        committed |= 1ULL << k;
        tout[k] = tc;
      }
    }

    // Exactly two changed inputs (i first, j second by transition
    // time): the trajectory is stale → mid → settled with
    // mid = W[{j}] while j is still old.
    for (int i = 0; n >= 2 && i < n - 1; ++i) {
      for (int j = i + 1; j < n; ++j) {
        std::uint64_t m = two & in_changed[i] & in_changed[j];
        while (m != 0) {
          const int k = std::countr_zero(m);
          m &= m - 1;
          const std::uint64_t bit = 1ULL << k;
          double tf = in_time[i][k];
          double ts = in_time[j][k];
          std::uint64_t mid_w = W[1u << j];
          if (ts < tf) {
            std::swap(tf, ts);
            mid_w = W[1u << i];
          }
          if ((changed & bit) != 0) {
            // Single commit: at the first flip when it already
            // produces the final value, else at the second.
            const double tc =
                (((mid_w ^ settled) & bit) == 0 ? tf : ts) + delay;
            if (acct.commit(out, k, tc, energy)) sampled ^= bit;
            committed |= bit;
            tout[k] = tc;
          } else if (((mid_w ^ settled) & bit) != 0 && tf + delay <= ts) {
            // Surviving glitch pulse [tf+delay, ts+delay) on an
            // unchanged output: two commits, forwarded downstream;
            // a capture edge inside it samples the transient.
            const double t1 = tf + delay;
            const double t2 = ts + delay;
            if (acct.commit(out, k, t1, energy)) sampled ^= bit;
            if (acct.commit(out, k, t2, energy)) sampled ^= bit;
            pulsing |= bit;
            pout_s[k] = t1;
            pout_e[k] = t2;
          }
        }
      }
    }

    // Three changed inputs: walk the four subset states in transition
    // order with the inertial rule.
    std::uint64_t m = three;
    while (m != 0) {
      const int k = std::countr_zero(m);
      m &= m - 1;
      int order[3] = {0, 1, 2};
      if (in_time[order[1]][k] < in_time[order[0]][k])
        std::swap(order[0], order[1]);
      if (in_time[order[2]][k] < in_time[order[1]][k])
        std::swap(order[1], order[2]);
      if (in_time[order[1]][k] < in_time[order[0]][k])
        std::swap(order[0], order[1]);
      const std::uint64_t bit = 1ULL << k;
      unsigned s = full;
      unsigned cur = static_cast<unsigned>((stale >> k) & 1ULL);
      bool pending = false;
      double commit_t = 0.0;
      // At most three commits here (three input events), so first /
      // second / last capture the whole trajectory exactly.
      double cts[3] = {0.0, 0.0, 0.0};
      double last_c = 0.0;
      int ncommits = 0;
      const auto do_commit = [&](double tc) {
        cur ^= 1u;
        if (ncommits < 3) cts[ncommits] = tc;
        ++ncommits;
        last_c = tc;
        if (acct.commit(out, k, tc, energy)) sampled ^= bit;
        committed |= bit;
      };
      for (int j = 0; j < 3; ++j) {
        const double t = in_time[order[j]][k];
        if (pending && commit_t <= t) {
          do_commit(commit_t);
          pending = false;
        }
        s &= ~(1u << order[j]);
        const auto v = static_cast<unsigned>((W[s] >> k) & 1ULL);
        if (v != cur && !pending) {
          pending = true;
          commit_t = t + delay;
        } else if (v == cur && pending) {
          pending = false;  // inertial cancellation
        }
      }
      if (pending) do_commit(commit_t);
      if ((changed & bit) != 0) {
        if (ncommits >= 3) {
          // The output bounced on its way to the settled value
          // (stale → settled → stale → settled). Forward the full
          // trajectory — first flip plus a return pulse — instead of
          // one late flip: collapsing it to the final commit time
          // systematically over-ages downstream transitions on
          // reconvergent structures (array multipliers) and inflates
          // deep-VOS BER versus the event engine.
          tout[k] = cts[0];
          pulsing |= bit;
          pout_s[k] = cts[1];
          pout_e[k] = last_c;
        } else {
          tout[k] = last_c;
        }
      } else if (ncommits >= 2) {
        pulsing |= bit;
        pout_s[k] = cts[0];
        pout_e[k] = cts[1];
      }
    }

    // Lanes fed by a glitch pulse: generic event walk over the ≤9
    // input events (flip per changed input, flip-and-return pair per
    // pulsing input, all three for a bouncing changed input).
    m = any_pulse & used;
    if (m != 0) {
      const std::uint16_t truth = cell_truth(g.kind);
      // Up to five events per input: a changed input that bounced
      // twice carries its first flip plus two return pulses.
      double ev_t[15];
      std::uint8_t ev_i[15];
      std::uint8_t ev_bit[15];
      while (m != 0) {
        const int k = std::countr_zero(m);
        m &= m - 1;
        int ne = 0;
        unsigned idx = 0;
        for (int i = 0; i < n; ++i) {
          const auto sbit =
              static_cast<std::uint8_t>((in_stale[i] >> k) & 1ULL);
          idx |= static_cast<unsigned>(sbit) << i;
          const auto push = [&](double t, std::uint8_t v) {
            ev_t[ne] = t;
            ev_i[ne] = static_cast<std::uint8_t>(i);
            ev_bit[ne] = v;
            ++ne;
          };
          const auto nbit = static_cast<std::uint8_t>(sbit ^ 1u);
          if (((in_changed[i] >> k) & 1ULL) != 0) {
            // First flip to the settled value; each forwarded pulse is
            // a late return trip back to the stale value and out again.
            push(in_time[i][k], nbit);
            if (((in_pulsing[i] >> k) & 1ULL) != 0) {
              push(in_ps[i][k], sbit);
              push(in_pe[i][k], nbit);
            }
            if (((in_pulsing2[i] >> k) & 1ULL) != 0) {
              push(in_ps2[i][k], sbit);
              push(in_pe2[i][k], nbit);
            }
          } else {
            // Unchanged input: each pulse is an excursion to the
            // complement of the settled value and back.
            if (((in_pulsing[i] >> k) & 1ULL) != 0) {
              push(in_ps[i][k], nbit);
              push(in_pe[i][k], sbit);
            }
            if (((in_pulsing2[i] >> k) & 1ULL) != 0) {
              push(in_ps2[i][k], nbit);
              push(in_pe2[i][k], sbit);
            }
          }
        }
        if (ne == 0) continue;
        for (int x = 1; x < ne; ++x)  // insertion sort, ascending time
          for (int y = x; y > 0 && ev_t[y] < ev_t[y - 1]; --y) {
            std::swap(ev_t[y], ev_t[y - 1]);
            std::swap(ev_i[y], ev_i[y - 1]);
            std::swap(ev_bit[y], ev_bit[y - 1]);
          }
        const std::uint64_t bit = 1ULL << k;
        unsigned cur = (truth >> idx) & 1u;
        bool pending = false;
        double commit_t = 0.0;
        double cts[4] = {0.0, 0.0, 0.0, 0.0};
        double last_c = 0.0;
        int ncommits = 0;
        const auto do_commit = [&](double tc) {
          cur ^= 1u;
          if (ncommits < 4) cts[ncommits] = tc;
          ++ncommits;
          last_c = tc;
          if (acct.commit(out, k, tc, energy)) sampled ^= bit;
          committed |= bit;
        };
        for (int j = 0; j < ne; ++j) {
          if (pending && commit_t <= ev_t[j]) {
            do_commit(commit_t);
            pending = false;
          }
          idx = (idx & ~(1u << ev_i[j])) |
                (static_cast<unsigned>(ev_bit[j]) << ev_i[j]);
          const unsigned v = (truth >> idx) & 1u;
          if (v != cur && !pending) {
            pending = true;
            commit_t = ev_t[j] + delay;
          } else if (v == cur && pending) {
            pending = false;  // inertial cancellation
          }
        }
        if (pending) do_commit(commit_t);
        if ((changed & bit) != 0) {
          if (ncommits >= 3) {
            // Bouncing changed output: first flip + return pulses (see
            // the three-changed walk above). Five or more commits
            // merge the tail bounces into the second pulse.
            tout[k] = cts[0];
            pulsing |= bit;
            pout_s[k] = cts[1];
            pout_e[k] = ncommits == 3 ? last_c : cts[2];
            if (ncommits >= 5) {
              pulsing2 |= bit;
              pout2_s[k] = cts[3];
              pout2_e[k] = last_c;
            }
          } else {
            tout[k] = last_c;
          }
        } else if (ncommits >= 2) {
          pulsing |= bit;
          pout_s[k] = cts[0];
          pout_e[k] = ncommits == 2 ? last_c : cts[1];
          if (ncommits >= 4) {
            pulsing2 |= bit;
            pout2_s[k] = cts[2];
            pout2_e[k] = last_c;
          }
        }
      }
    }

    // Cycle-mode catch-up: a lane whose truncated launch value differs
    // from its settled function but committed nothing above would stay
    // wrong for every following cycle, while the event engine's
    // in-flight transition lands within one gate delay of the edge.
    // Commit the final value at the gate's own delay (the upper bound
    // on the in-flight remainder), clamped inside the capture window —
    // a gate slower than the whole clock period must still resolve, or
    // the repair would re-fail every cycle and the net stay wrong
    // forever. Under the streaming invariant (stale = settled function
    // of stale inputs) this mask is empty, so step()/step_batch/sweep
    // behavior is untouched.
    std::uint64_t m_catch = changed & ~committed & used;
    if (m_catch != 0) {
      const double tc = std::min(delay, 0.999 * tclk_ps_);
      while (m_catch != 0) {
        const int k = std::countr_zero(m_catch);
        m_catch &= m_catch - 1;
        const std::uint64_t bit = 1ULL << k;
        if (acct.commit(out, k, tc, energy)) sampled ^= bit;
        tout[k] = tc;
      }
    }

    sampled_w_[out] = sampled;
    pulsing_w_[out] = pulsing;
    pulsing2_w_[out] = pulsing2;
  }
}

void LevelizedSimulator::carry_state(std::size_t lanes, bool truncate) {
  const std::size_t last = lanes - 1;
  for (NetId n = 0; n < static_cast<NetId>(netlist_.num_nets()); ++n) {
    const auto settled =
        static_cast<std::uint8_t>((settled_w_[n] >> last) & 1ULL);
    const auto sampled =
        static_cast<std::uint8_t>((sampled_w_[n] >> last) & 1ULL);
    state_[n] = truncate ? sampled : settled;
    sampled_state_[n] = sampled;
  }
}

void LevelizedSimulator::run_lanes(std::size_t lanes,
                                   std::span<StepResult> results,
                                   bool truncate_state) {
  for (std::size_t k = 0; k < lanes; ++k) results[k] = StepResult{};
  SingleThresholdAcct acct{tclk_ps_, results.data()};
  run_lanes_impl(lanes, acct);

  const auto pos = netlist_.primary_outputs();
  for (std::size_t k = 0; k < lanes; ++k) {
    std::uint64_t sampled = 0;
    std::uint64_t settled = 0;
    for (std::size_t j = 0; j < pos.size(); ++j) {
      sampled |= ((sampled_w_[pos[j]] >> k) & 1ULL) << j;
      settled |= ((settled_w_[pos[j]] >> k) & 1ULL) << j;
    }
    results[k].sampled_outputs = sampled;
    results[k].settled_outputs = settled;
  }
  carry_state(lanes, truncate_state);
}

void LevelizedSimulator::run_lanes_sweep(std::size_t lanes,
                                         std::span<const double> thresholds_ps,
                                         std::span<StepResult> results) {
  const std::size_t nthr = thresholds_ps.size();
  const auto pos = netlist_.primary_outputs();
  const std::size_t npo = pos.size();

  sweep_ediff_.assign((nthr + 1) * kLanes, 0.0);
  sweep_tdiff_.assign((nthr + 1) * kLanes, 0);
  sweep_sdiff_.assign(npo * (nthr + 1), 0);
  sweep_tot_e_.assign(kLanes, 0.0);
  sweep_tot_t_.assign(kLanes, 0);
  sweep_settle_.assign(kLanes, 0.0);

  MultiThresholdAcct acct{thresholds_ps,     sweep_ediff_.data(),
                          sweep_tdiff_.data(), sweep_sdiff_.data(),
                          sweep_tot_e_.data(), sweep_tot_t_.data(),
                          sweep_settle_.data(), po_index_.data()};
  run_lanes_impl(lanes, acct);

  // Prefix over buckets: threshold j sees every commit in buckets ≤ j.
  // sweep_ediff_/tdiff_ become per-threshold window sums in place;
  // sweep_sdiff_ becomes per-threshold sampled words (base: stale).
  for (std::size_t j = 1; j < nthr; ++j) {
    double* ej = &sweep_ediff_[j * kLanes];
    const double* ep = &sweep_ediff_[(j - 1) * kLanes];
    std::uint32_t* tj = &sweep_tdiff_[j * kLanes];
    const std::uint32_t* tp = &sweep_tdiff_[(j - 1) * kLanes];
    for (std::size_t k = 0; k < lanes; ++k) {
      ej[k] += ep[k];
      tj[k] += tp[k];
    }
  }
  for (std::size_t p = 0; p < npo; ++p) {
    std::uint64_t run = stale_w_[pos[p]];
    for (std::size_t j = 0; j < nthr; ++j) {
      run ^= sweep_sdiff_[p * (nthr + 1) + j];
      sweep_sdiff_[p * (nthr + 1) + j] = run;
    }
  }

  for (std::size_t k = 0; k < lanes; ++k) {
    std::uint64_t settled = 0;
    for (std::size_t p = 0; p < npo; ++p)
      settled |= ((settled_w_[pos[p]] >> k) & 1ULL) << p;
    for (std::size_t j = 0; j < nthr; ++j) {
      StepResult& r = results[k * nthr + j];
      std::uint64_t sampled = 0;
      for (std::size_t p = 0; p < npo; ++p)
        sampled |=
            ((sweep_sdiff_[p * (nthr + 1) + j] >> k) & 1ULL) << p;
      r.sampled_outputs = sampled;
      r.settled_outputs = settled;
      r.window_energy_fj = sweep_ediff_[j * kLanes + k];
      r.toggles_in_window = sweep_tdiff_[j * kLanes + k];
      r.total_energy_fj = sweep_tot_e_[k];
      r.toggles_total = sweep_tot_t_[k];
      r.settle_time_ps = sweep_settle_[k];
    }
  }
  carry_state(lanes);
}

}  // namespace vosim
