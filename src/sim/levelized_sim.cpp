#include "src/sim/levelized_sim.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "src/netlist/eval.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/probe.hpp"
#include "src/sta/sta.hpp"
#include "src/tech/gate_timing.hpp"
#include "src/util/contracts.hpp"
#include "src/util/rng.hpp"

namespace vosim {

namespace {

/// Accounting policy for one fixed clock threshold: per-lane SoA
/// accumulators (folded into StepResults by run_lanes — contiguous
/// arrays keep the hot commit loops cache-dense and vectorizable).
/// kWindowOnly drops the totals: the cycle-mode callers (step_cycle /
/// step_cycle_batch) define totals == window ("nothing is simulated
/// past the edge") and overwrite them, so tracking both is pure waste
/// there. Templated on the lane word: the SIMD sweeps below run the
/// same 4-lane nibble kernel over each 64-bit sub-word, so one
/// definition serves the 64-, 256- and 512-lane engines.
template <class LW, bool kWindowOnly>
struct SingleThresholdAcct {
  static constexpr std::size_t kLanes = lanes::lane_count_v<LW>;

  double tclk_ps;
  std::size_t nlanes;  ///< word sweeps stop here (1 for scalar passes)
  double* win_e;
  double* settle;
  std::uint32_t* win_t;
  double* tot_e;         // null when kWindowOnly
  std::uint32_t* tot_t;  // null when kWindowOnly

  /// Word-commit eligible: launch-edge (t = 0) commits account a whole
  /// lane word per call instead of per-lane commits.
  static constexpr bool kWordCommit = true;

  bool commit(NetId /*net*/, std::size_t k, double tc, double energy) {
    if constexpr (!kWindowOnly) {
      ++tot_t[k];
      tot_e[k] += energy;
    }
    settle[k] = std::max(settle[k], tc);
    if (tc < tclk_ps) {
      ++win_t[k];
      win_e[k] += energy;
      return true;
    }
    return false;
  }

#if defined(__AVX2__)
  /// Vectorized in-window single-flip commits: every lane in `m`
  /// commits exactly once at t_in[k] + delay (the caller proved STA
  /// arrival < Tclk, so the window test is statically true). Per-lane
  /// arithmetic is exactly commit()'s — one IEEE add per accumulator,
  /// one max — and vectorization only changes which lanes run
  /// together, never a lane's own operation sequence, so the results
  /// are bit-identical to the scalar loop. Inactive lanes are masked
  /// to += 0.0 / max-with-0.0 no-ops (the accumulators are sums of
  /// non-negative terms, never -0.0, and settle >= 0); their t_in may
  /// be uninitialized but never escapes the mask.
  void commit_flips_simd(const LW& m, const double* t_in, double delay,
                         double energy, double* tout) {
    const __m256d vd = _mm256_set1_pd(delay);
    const __m256d ve = _mm256_set1_pd(energy);
    const __m256i lanebit = _mm256_setr_epi64x(1, 2, 4, 8);
    for (std::size_t sub = 0; sub < lanes::subword_count_v<LW>; ++sub) {
      const std::uint64_t ms = lanes::subword(m, sub);
      if (ms == 0) continue;
      const std::size_t off0 = sub * lanes::kWordLanes;
      for (std::size_t base = 0; base < lanes::kWordLanes; base += 4) {
        const auto nib = static_cast<long long>((ms >> base) & 0xF);
        if (nib == 0) continue;
        const std::size_t off = off0 + base;
        const __m256i sel = _mm256_cmpeq_epi64(
            _mm256_and_si256(_mm256_set1_epi64x(nib), lanebit), lanebit);
        const __m256d mask = _mm256_castsi256_pd(sel);
        const __m256d tc = _mm256_and_pd(
            mask, _mm256_add_pd(_mm256_loadu_pd(t_in + off), vd));
        const __m256d em = _mm256_and_pd(mask, ve);
        _mm256_storeu_pd(
            win_e + off,
            _mm256_add_pd(_mm256_loadu_pd(win_e + off), em));
        _mm256_storeu_pd(
            settle + off,
            _mm256_max_pd(_mm256_loadu_pd(settle + off), tc));
        _mm256_storeu_pd(
            tout + off,
            _mm256_blendv_pd(_mm256_loadu_pd(tout + off), tc, mask));
        if constexpr (!kWindowOnly)
          _mm256_storeu_pd(
              tot_e + off,
              _mm256_add_pd(_mm256_loadu_pd(tot_e + off), em));
      }
    }
    lanes::for_each_lane(m, [&](std::size_t k) {
      ++win_t[k];
      if constexpr (!kWindowOnly) ++tot_t[k];
    });
  }

  /// Vectorized two-changed-input single commits for an in-window
  /// gate: every lane in `m` has exactly inputs i and j changed
  /// (pulse-free) and a changed output, so it commits once — at the
  /// first input event when that already yields the settled value,
  /// else at the second (two_changed_lane's commit branch, same
  /// min/max/select arithmetic, so bit-identical results). wi/wj are
  /// the gate subset words W[1<<i] / W[1<<j], `settled` the settled
  /// output word.
  void commit_two_simd(const LW& m, const double* ti, const double* tj,
                       const LW& wi, const LW& wj, const LW& settled,
                       double delay, double energy, double* tout) {
    const __m256d vd = _mm256_set1_pd(delay);
    const __m256d ve = _mm256_set1_pd(energy);
    const __m256i lanebit = _mm256_setr_epi64x(1, 2, 4, 8);
    const __m256i one64 = _mm256_set1_epi64x(1);
    for (std::size_t sub = 0; sub < lanes::subword_count_v<LW>; ++sub) {
      const std::uint64_t ms = lanes::subword(m, sub);
      if (ms == 0) continue;
      const std::size_t off0 = sub * lanes::kWordLanes;
      const __m256i vwi = _mm256_set1_epi64x(
          static_cast<long long>(lanes::subword(wi, sub)));
      const __m256i vwj = _mm256_set1_epi64x(
          static_cast<long long>(lanes::subword(wj, sub)));
      const __m256i vst = _mm256_set1_epi64x(
          static_cast<long long>(lanes::subword(settled, sub)));
      for (std::size_t base = 0; base < lanes::kWordLanes; base += 4) {
        const auto nib = static_cast<long long>((ms >> base) & 0xF);
        if (nib == 0) continue;
        const std::size_t off = off0 + base;
        const __m256i am = _mm256_cmpeq_epi64(
            _mm256_and_si256(_mm256_set1_epi64x(nib), lanebit), lanebit);
        const __m256d amd = _mm256_castsi256_pd(am);
        const __m256d vti = _mm256_loadu_pd(ti + off);
        const __m256d vtj = _mm256_loadu_pd(tj + off);
        // sel: the second (j) input flipped first, so the mid state has
        // input i still stale (two_changed_lane's swap branch).
        const __m256i sel = _mm256_castpd_si256(
            _mm256_cmp_pd(vtj, vti, _CMP_LT_OQ));
        const __m256i sh = _mm256_add_epi64(
            _mm256_set1_epi64x(static_cast<long long>(base)),
            _mm256_setr_epi64x(0, 1, 2, 3));
        const __m256i bi =
            _mm256_and_si256(_mm256_srlv_epi64(vwi, sh), one64);
        const __m256i bj =
            _mm256_and_si256(_mm256_srlv_epi64(vwj, sh), one64);
        const __m256i bs =
            _mm256_and_si256(_mm256_srlv_epi64(vst, sh), one64);
        const __m256i mid = _mm256_blendv_epi8(bj, bi, sel);
        const __m256d use_first =
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(mid, bs));
        const __m256d tf = _mm256_min_pd(vti, vtj);
        const __m256d ts = _mm256_max_pd(vti, vtj);
        const __m256d tc = _mm256_and_pd(
            amd,
            _mm256_add_pd(_mm256_blendv_pd(ts, tf, use_first), vd));
        const __m256d em = _mm256_and_pd(amd, ve);
        _mm256_storeu_pd(
            win_e + off,
            _mm256_add_pd(_mm256_loadu_pd(win_e + off), em));
        _mm256_storeu_pd(
            settle + off,
            _mm256_max_pd(_mm256_loadu_pd(settle + off), tc));
        _mm256_storeu_pd(
            tout + off,
            _mm256_blendv_pd(_mm256_loadu_pd(tout + off), tc, amd));
        if constexpr (!kWindowOnly)
          _mm256_storeu_pd(
              tot_e + off,
              _mm256_add_pd(_mm256_loadu_pd(tot_e + off), em));
      }
    }
    lanes::for_each_lane(m, [&](std::size_t k) {
      ++win_t[k];
      if constexpr (!kWindowOnly) ++tot_t[k];
    });
  }
#endif  // __AVX2__

  /// Word commit at t = 0 (primary-input launch commits): in-window by
  /// definition, and settle = max(settle, 0) is a no-op. The
  /// branchless per-sub-word sweep auto-vectorizes; inactive lanes
  /// contribute bitwise-identity no-ops — += 0.0 (the accumulators are
  /// sums of non-negative terms, never -0.0) and a tout self-assign —
  /// so each lane holds exactly what per-lane commit() calls would
  /// produce.
  void commit_word_zero(const LW& m, double energy, double* tout) {
    for (std::size_t sub = 0; sub * lanes::kWordLanes < nlanes; ++sub) {
      const std::uint64_t ms = lanes::subword(m, sub);
      const std::size_t k0 = sub * lanes::kWordLanes;
      const std::size_t lim = std::min(lanes::kWordLanes, nlanes - k0);
      double* __restrict we = win_e + k0;
      double* __restrict to = tout + k0;
      std::uint32_t* __restrict wt = win_t + k0;
      for (std::size_t k = 0; k < lim; ++k) {
        const bool a = ((ms >> k) & 1ULL) != 0;
        we[k] += a ? energy : 0.0;
        to[k] = a ? 0.0 : to[k];
        wt[k] += static_cast<std::uint32_t>(a);
      }
      if constexpr (!kWindowOnly) {
        double* __restrict te = tot_e + k0;
        std::uint32_t* __restrict tt = tot_t + k0;
        for (std::size_t k = 0; k < lim; ++k) {
          const bool a = ((ms >> k) & 1ULL) != 0;
          te[k] += a ? energy : 0.0;
          tt[k] += static_cast<std::uint32_t>(a);
        }
      }
    }
  }
};

/// Accounting policy for a whole ascending threshold set: every commit
/// lands in the bucket of the first threshold it misses, so one prefix
/// pass later yields per-threshold window energy/toggle counts, and an
/// XOR-difference per primary output yields per-threshold sampled
/// words (a net's sampled value at τ is its stale value XOR the parity
/// of its commits before τ).
template <class LW>
struct MultiThresholdAcct {
  static constexpr bool kWordCommit = false;  // every commit is bucketed
  static constexpr std::size_t kLanes = lanes::lane_count_v<LW>;

  std::span<const double> thresholds_ps;
  double* ediff;              // (nthr+1) × kLanes, bucket-major
  std::uint32_t* tdiff;       // (nthr+1) × kLanes
  LW* sdiff;                  // nPO × (nthr+1)
  double* tot_e;              // per lane
  std::uint32_t* tot_t;       // per lane
  double* settle;             // per lane
  const std::int32_t* po_index;

  bool commit(NetId net, std::size_t k, double tc, double energy) {
    const auto b = static_cast<std::size_t>(
        std::upper_bound(thresholds_ps.begin(), thresholds_ps.end(), tc) -
        thresholds_ps.begin());
    ediff[b * kLanes + k] += energy;
    ++tdiff[b * kLanes + k];
    tot_e[k] += energy;
    ++tot_t[k];
    settle[k] = std::max(settle[k], tc);
    const std::int32_t po = po_index[net];
    if (po >= 0)
      lanes::toggle_lane(
          sdiff[static_cast<std::size_t>(po) * (thresholds_ps.size() + 1) +
                b],
          k);
    return false;  // no single sampled word is maintained in sweep mode
  }
};

}  // namespace

template <class LW>
LevelizedSimulatorT<LW>::LevelizedSimulatorT(const Netlist& netlist,
                                             const CellLibrary& lib,
                                             const OperatingTriad& op,
                                             const TimingSimConfig& config)
    : netlist_(netlist), op_(op) {
  VOSIM_EXPECTS(netlist.finalized());
  VOSIM_EXPECTS(op.tclk_ns > 0.0);
  VOSIM_EXPECTS(config.variation_sigma >= 0.0);
  VOSIM_EXPECTS(config.delay_scale > 0.0);
  VOSIM_EXPECTS(config.leakage_scale > 0.0);
  tclk_ps_ = op.tclk_ns * 1e3;

  const std::vector<double> loads = netlist.compute_net_loads(lib);
  const TransistorModel& tm = lib.transistor_model();

  // Identical delay assignment (and variation-sample sequence) to the
  // event engine: a given (sigma, seed) names the same die under both
  // backends, so cross-backend comparisons see one circuit. The
  // triad's delay scale is gate-independent, so it is evaluated once
  // (same product, bit-identical to gate_delay_ps per gate).
  gate_delay_ps_.resize(netlist.num_gates());
  Rng vrng(config.variation_seed);
  const double dscale = tm.delay_scale(op_.vdd_v, op_.vbb_v);
  for (GateId gid = 0; gid < netlist.num_gates(); ++gid) {
    const Gate& g = netlist.gate(gid);
    const Cell& cell = lib.cell(g.kind);
    const double nominal_ps =
        cell.intrinsic_delay_ps + cell.drive_ps_per_ff * loads[g.out];
    // Same product order as the event engine ((nominal·triad)·die·var),
    // so a (scale, sigma, seed) tuple names one die under both backends.
    double d = nominal_ps * dscale * config.delay_scale;
    if (config.variation_sigma > 0.0)
      d *= std::exp(config.variation_sigma * vrng.gaussian());
    gate_delay_ps_[gid] = d;
  }

  net_energy_fj_.resize(netlist.num_nets());
  for (NetId n = 0; n < netlist.num_nets(); ++n)
    net_energy_fj_[n] = toggle_energy_fj(loads[n], op_.vdd_v);

  double leak_nw = netlist.cell_leakage_nw(lib);
  leak_nw *= tm.leakage_scale(op_.vdd_v, op_.vbb_v);
  leak_nw *= config.leakage_scale;
  leak_nw_scaled_ = leak_nw;
  leakage_energy_fj_ = leak_nw * 1e-3 * tclk_ps_ * 1e-3;  // nW·ps → fJ

  arrival_ps_ = arrival_times_ps(netlist, gate_delay_ps_);
  for (const NetId po : netlist.primary_outputs())
    critical_path_ps_ = std::max(critical_path_ps_, arrival_ps_[po]);

  // Cycle-mode fast-path eligibility. Every commit time at a gate is an
  // event-time + delay chain bounded by the same IEEE additions the STA
  // recurrence performs (PIs commit at 0, catch-ups below Tclk), so
  // arrival < Tclk proves all of the gate's commits land in-window in
  // every lane of every cycle: its sampled word equals its settled word
  // and stale(k) = sampled(k-1) collapses to the streaming recurrence
  // stale(k) = settled(k-1).
  cycle_safe_.resize(netlist.num_gates());
  for (GateId gid = 0; gid < netlist.num_gates(); ++gid)
    cycle_safe_[gid] =
        arrival_ps_[netlist.gate(gid).out] < tclk_ps_ ? 1 : 0;

  settled_w_.assign(netlist.num_nets(), LW{});
  stale_w_.assign(netlist.num_nets(), LW{});
  sampled_w_.assign(netlist.num_nets(), LW{});
  time_ps_ = std::make_unique_for_overwrite<double[]>(
      netlist.num_nets() * kLanes);
  pulsing_w_.assign(netlist.num_nets(), LW{});
  pulse_start_ps_ = std::make_unique_for_overwrite<double[]>(
      netlist.num_nets() * kLanes);
  pulse_end_ps_ = std::make_unique_for_overwrite<double[]>(
      netlist.num_nets() * kLanes);
  pulsing2_w_.assign(netlist.num_nets(), LW{});
  pulse2_start_ps_ = std::make_unique_for_overwrite<double[]>(
      netlist.num_nets() * kLanes);
  pulse2_end_ps_ = std::make_unique_for_overwrite<double[]>(
      netlist.num_nets() * kLanes);

  po_index_.assign(netlist.num_nets(), -1);
  const auto pos = netlist.primary_outputs();
  for (std::size_t j = 0; j < pos.size(); ++j)
    po_index_[pos[j]] = static_cast<std::int32_t>(j);

  // Establish a consistent all-zero-input state.
  std::vector<std::uint8_t> zeros(netlist.primary_inputs().size(), 0);
  reset(zeros);
}

template <class LW>
bool LevelizedSimulatorT<LW>::retarget_tclk_ps(double tclk_ps) {
  VOSIM_EXPECTS(tclk_ps > 0.0);
  tclk_ps_ = tclk_ps;
  op_.tclk_ns = tclk_ps * 1e-3;
  // Same expressions as construction, against the cached die.
  leakage_energy_fj_ = leak_nw_scaled_ * 1e-3 * tclk_ps_ * 1e-3;
  for (GateId gid = 0; gid < netlist_.num_gates(); ++gid)
    cycle_safe_[gid] =
        arrival_ps_[netlist_.gate(gid).out] < tclk_ps_ ? 1 : 0;
  return true;
}

template <class LW>
void LevelizedSimulatorT<LW>::reset(std::span<const std::uint8_t> inputs) {
  VOSIM_EXPECTS(inputs.size() == netlist_.primary_inputs().size());
  state_ = evaluate_logic(netlist_, inputs);
  sampled_state_ = state_;
}

template <class LW>
StepResult LevelizedSimulatorT<LW>::step(
    std::span<const std::uint8_t> inputs) {
  const auto pis = netlist_.primary_inputs();
  VOSIM_EXPECTS(inputs.size() == pis.size());
  for (std::size_t j = 0; j < pis.size(); ++j)
    settled_w_[pis[j]] = inputs[j] ? lanes::bit<LW>(0) : LW{};
  StepResult result;
  run_lanes(1, {&result, 1});
  return result;
}

template <class LW>
StepResult LevelizedSimulatorT<LW>::step_cycle(
    std::span<const std::uint8_t> inputs) {
  const auto pis = netlist_.primary_inputs();
  VOSIM_EXPECTS(inputs.size() == pis.size());
  for (std::size_t j = 0; j < pis.size(); ++j)
    settled_w_[pis[j]] = inputs[j] ? lanes::bit<LW>(0) : LW{};
  StepResult result;
  run_lanes(1, {&result, 1}, /*cycle_mode=*/true);
  // Nothing is simulated past the edge in cycle mode.
  result.total_energy_fj = result.window_energy_fj;
  result.toggles_total = result.toggles_in_window;
  return result;
}

template <class LW>
void LevelizedSimulatorT<LW>::step_batch(
    std::span<const std::uint8_t> inputs, std::size_t count,
    std::span<StepResult> results) {
  const auto pis = netlist_.primary_inputs();
  const std::size_t npis = pis.size();
  VOSIM_EXPECTS(inputs.size() == count * npis);
  VOSIM_EXPECTS(results.size() >= count);
  // Per-batch throughput accounting: one relaxed add per batch (not
  // per pattern), cached refs so the registry mutex is never on the
  // hot path.
  static obs::Counter& pattern_counter =
      obs::metrics().counter("sim.levelized.patterns");
  static obs::Counter& word_counter =
      obs::metrics().counter("sim.levelized.lane_words");
  pattern_counter.add(count);
  word_counter.add((count + kLanes - 1) / kLanes);
  std::size_t done = 0;
  while (done < count) {
    const std::size_t lanes = std::min(kLanes, count - done);
    for (std::size_t j = 0; j < npis; ++j) {
      LW w{};
      for (std::size_t k = 0; k < lanes; ++k)
        if (inputs[(done + k) * npis + j]) lanes::set_lane(w, k);
      settled_w_[pis[j]] = w;
    }
    run_lanes(lanes, results.subspan(done, lanes));
    done += lanes;
  }
}

template <class LW>
void LevelizedSimulatorT<LW>::step_cycle_batch(
    std::span<const std::uint8_t> inputs, std::size_t count,
    std::span<StepResult> results) {
  const auto pis = netlist_.primary_inputs();
  const std::size_t npis = pis.size();
  VOSIM_EXPECTS(inputs.size() == count * npis);
  VOSIM_EXPECTS(results.size() >= count);
  static obs::Counter& cycle_counter =
      obs::metrics().counter("sim.levelized.cycles");
  static obs::Counter& word_counter =
      obs::metrics().counter("sim.levelized.lane_words");
  cycle_counter.add(count);
  word_counter.add((count + kLanes - 1) / kLanes);
  std::size_t done = 0;
  while (done < count) {
    const std::size_t lanes = std::min(kLanes, count - done);
    for (std::size_t j = 0; j < npis; ++j) {
      LW w{};
      for (std::size_t k = 0; k < lanes; ++k)
        if (inputs[(done + k) * npis + j]) lanes::set_lane(w, k);
      settled_w_[pis[j]] = w;
    }
    run_lanes(lanes, results.subspan(done, lanes), /*cycle_mode=*/true);
    done += lanes;
  }
  // Nothing is simulated past the edge in cycle mode.
  for (std::size_t k = 0; k < count; ++k) {
    results[k].total_energy_fj = results[k].window_energy_fj;
    results[k].toggles_total = results[k].toggles_in_window;
  }
}

template <class LW>
void LevelizedSimulatorT<LW>::step_batch_sweep(
    std::span<const std::uint8_t> inputs, std::size_t count,
    std::span<const double> thresholds_ps, std::span<StepResult> results) {
  const auto pis = netlist_.primary_inputs();
  const std::size_t npis = pis.size();
  const std::size_t nthr = thresholds_ps.size();
  VOSIM_EXPECTS(nthr > 0);
  VOSIM_EXPECTS(std::is_sorted(thresholds_ps.begin(), thresholds_ps.end()));
  VOSIM_EXPECTS(thresholds_ps.front() > 0.0);
  VOSIM_EXPECTS(inputs.size() == count * npis);
  VOSIM_EXPECTS(results.size() >= count * nthr);
  static obs::Counter& pattern_counter =
      obs::metrics().counter("sim.levelized.patterns");
  static obs::Counter& word_counter =
      obs::metrics().counter("sim.levelized.lane_words");
  pattern_counter.add(count);
  word_counter.add((count + kLanes - 1) / kLanes);
  std::size_t done = 0;
  while (done < count) {
    const std::size_t lanes = std::min(kLanes, count - done);
    for (std::size_t j = 0; j < npis; ++j) {
      LW w{};
      for (std::size_t k = 0; k < lanes; ++k)
        if (inputs[(done + k) * npis + j]) lanes::set_lane(w, k);
      settled_w_[pis[j]] = w;
    }
    run_lanes_sweep(lanes, thresholds_ps,
                    results.subspan(done * nthr, lanes * nthr));
    done += lanes;
  }
}

template <class LW>
template <bool kCycleMode, class Acct>
void LevelizedSimulatorT<LW>::run_lanes_impl(std::size_t lanes,
                                             Acct& acct) {
  const LW used = lanes::mask<LW>(lanes);

  // Primary inputs: lane k's stale value is lane k-1's value (lane 0
  // continues from the carried state); input transitions commit at
  // t = 0, like the event engine's launch-edge commits. Sampled values
  // are tracked as stale XOR the parity of commits inside the window.
  // PIs always commit at t = 0 < Tclk, so their sampled value equals
  // their settled value and the streaming recurrence stale(k) =
  // settled(k-1) coincides with the cycle-mode recurrence stale(k) =
  // sampled(k-1): this block serves both modes unchanged.
  for (const NetId pi : netlist_.primary_inputs()) {
    const LW settled = settled_w_[pi] & used;
    settled_w_[pi] = settled;
    const LW stale = lanes::shift1_in(settled, state_[pi]) & used;
    stale_w_[pi] = stale;
    pulsing_w_[pi] = LW{};
    pulsing2_w_[pi] = LW{};
    const double energy = net_energy_fj_[pi];
    double* t = &time_ps_[static_cast<std::size_t>(pi) * kLanes];
    const LW m = settled ^ stale;
    if constexpr (Acct::kWordCommit) {
      // Every launch commit is in-window, so the sampled word is just
      // the settled word.
      if (lanes::any(m)) acct.commit_word_zero(m, energy, t);
      sampled_w_[pi] = settled;
    } else {
      LW sampled = stale;
      lanes::for_each_lane(m, [&](std::size_t k) {
        t[k] = 0.0;
        if (acct.commit(pi, k, 0.0, energy))
          lanes::toggle_lane(sampled, k);
      });
      sampled_w_[pi] = sampled;
    }
  }

  // One levelized pass. Values: packed kLanes-lane evaluation per
  // gate. Timing: each lane with input activity runs a miniature event
  // simulation of just this gate over its ≤6 input events (one flip
  // per changed input at its final transition time, a flip-and-return
  // pair per pulsing input), with the event engine's inertial rule —
  // in binary logic a scheduled commit is only ever cancelled (input
  // pulse shorter than the gate delay), never rescheduled. Commits
  // yield the output's transition time, glitch-pulse window, toggle
  // energy, and the value the capture register samples at Tclk.
  //
  // The hot path dispatches lanes by changed-input count using packed
  // subset words W[s] (the gate function with the inputs in s still at
  // their stale values, evaluated for all kLanes lanes at once): a
  // non-sensitized single change costs nothing, sensitized one- and
  // two-change lanes collapse to a handful of scalar operations, and
  // only lanes fed by a glitch pulse take the generic event walk.
  //
  // The approximations relative to the full event engine: a changed
  // input is forwarded as one transition at its commit time — or, when
  // it bounced on the way to the settled value, as its first flip plus
  // one return pulse (middle bounces of longer chatter are merged) —
  // and an unchanged output's commits are forwarded as one merged
  // pulse.
  //
  // Lane semantics differ per mode. Streaming (step/step_batch/sweep):
  // lane k is an independent pattern whose stale value is lane k-1's
  // settled value, so stale/changed are whole-word shifts and lanes
  // are order-free. Cycle mode (step_cycle/step_cycle_batch): lane k
  // is clock cycle k and launches from lane k-1's *sampled* (at-edge
  // truncated) value, so active lanes resolve in ascending lane order
  // — each per-lane body below is shared verbatim between the two
  // dispatch loops, which keeps the commit sequence (and therefore
  // the floating-point energy accumulation) of any one lane identical
  // whether it was reached by streaming masks or by the cycle scan.
  // The per-lane bodies are also shared across lane widths (they act
  // on single lanes through lane_bit/toggle_lane/assign_lane), which
  // is what makes the 256/512-lane engines bit-exact against the
  // 64-lane one.
  for (const GateId gid : netlist_.topo_order()) {
    const Gate& g = netlist_.gate(gid);
    const NetId out = g.out;
    const int n = g.num_inputs;
    const unsigned full = (1u << n) - 1u;

    LW in_settled[3] = {};
    LW in_stale[3] = {};
    LW in_changed[3] = {};
    LW in_pulsing[3] = {};
    LW in_pulsing2[3] = {};
    LW any_pulse{};
    LW any_changed{};
    for (int i = 0; i < n; ++i) {
      const NetId in = g.in[i];
      in_settled[i] = settled_w_[in];
      in_stale[i] = stale_w_[in];
      in_changed[i] = in_settled[i] ^ in_stale[i];
      in_pulsing[i] = pulsing_w_[in];
      in_pulsing2[i] = pulsing2_w_[in];
      any_pulse |= in_pulsing[i] | in_pulsing2[i];
      any_changed |= in_changed[i];
    }

    // Quiet-gate fast exit: no input changed and nothing pulses, so no
    // lane walks, no subset words beyond W[0] and no pulse bookkeeping.
    // All that remains of the general path is the settled/stale/sampled
    // word hand-off plus the catch-up sweep over changed-but-inactive
    // lanes (cycle mode; empty under the streaming invariant) — commit
    // for commit what the full dispatch would do on such a gate.
    if (!lanes::any((any_changed | any_pulse) & used)) {
      const LW settled =
          eval_cell_packed(g.kind, in_settled[0], in_settled[1],
                           in_settled[2]) &
          used;
      settled_w_[out] = settled;
      const auto state0 = static_cast<std::uint8_t>(state_[out] & 1);
      const bool word_recurrence = !kCycleMode || cycle_safe_[gid] != 0;
      LW sampled;
      LW m_catch;
      if (word_recurrence) {
        const LW stale = lanes::shift1_in(settled, state0) & used;
        stale_w_[out] = stale;
        sampled = stale;
        m_catch = (settled ^ stale) & used;
      } else {
        // Every lane is inactive: sampled(k) = settled(k) (the only
        // possible commit is the in-window catch-up), so the stale
        // chain is the settled word shifted by one cycle.
        sampled = settled;
        const LW stale = lanes::shift1_in(settled, state0) & used;
        stale_w_[out] = stale;
        m_catch = (settled ^ stale) & used;
      }
      if (lanes::any(m_catch)) {
        const double delay = gate_delay_ps_[gid];
        const double energy = net_energy_fj_[out];
        const double tc = std::min(delay, 0.999 * tclk_ps_);
        double* tout = &time_ps_[static_cast<std::size_t>(out) * kLanes];
        lanes::for_each_lane(m_catch, [&](std::size_t k) {
          if (acct.commit(out, k, tc, energy))
            lanes::assign_lane(sampled, k,
                               lanes::lane_bit(settled, k) != 0);
          tout[k] = tc;
        });
      }
      sampled_w_[out] = sampled;
      pulsing_w_[out] = LW{};
      pulsing2_w_[out] = LW{};
      continue;
    }

    const double* in_time[3] = {nullptr, nullptr, nullptr};
    const double* in_ps[3] = {nullptr, nullptr, nullptr};
    const double* in_pe[3] = {nullptr, nullptr, nullptr};
    const double* in_ps2[3] = {nullptr, nullptr, nullptr};
    const double* in_pe2[3] = {nullptr, nullptr, nullptr};
    for (int i = 0; i < n; ++i) {
      const auto base = static_cast<std::size_t>(g.in[i]) * kLanes;
      in_time[i] = &time_ps_[base];
      in_ps[i] = &pulse_start_ps_[base];
      in_pe[i] = &pulse_end_ps_[base];
      in_ps2[i] = &pulse2_start_ps_[base];
      in_pe2[i] = &pulse2_end_ps_[base];
    }

    // W[s]: packed gate value with the inputs in subset s still stale.
    LW W[8];
    for (unsigned s = 0; s <= full; ++s) {
      const LW wa =
          n > 0 ? ((s & 1u) ? in_stale[0] : in_settled[0]) : LW{};
      const LW wb =
          n > 1 ? ((s & 2u) ? in_stale[1] : in_settled[1]) : LW{};
      const LW wc =
          n > 2 ? ((s & 4u) ? in_stale[2] : in_settled[2]) : LW{};
      W[s] = eval_cell_packed(g.kind, wa, wb, wc) & used;
    }
    const LW settled = W[0];
    settled_w_[out] = settled;
    const auto state0 = static_cast<std::uint8_t>(state_[out] & 1);

    // A cycle-safe gate (STA arrival < Tclk, cycle_safe_) never commits
    // past the edge, and neither does anything in its fan-in cone
    // (arrival is nondecreasing along paths), so its sampled word always
    // equals its settled word and stale(k) = sampled(k-1) collapses to
    // the streaming recurrence — such gates take the packed streaming
    // dispatch even in cycle mode. Only gates reachable past the edge
    // pay the serial ascending lane scan.
    const bool word_recurrence = !kCycleMode || cycle_safe_[gid] != 0;
    LW stale;
    LW changed;
    LW sampled;
    if (word_recurrence) {
      stale = lanes::shift1_in(settled, state0) & used;
      stale_w_[out] = stale;
      changed = settled ^ stale;
      sampled = stale;
    } else {
      // Built lane by lane in the cycle scan below; lanes without input
      // activity sample their settled value (their only possible commit
      // is the catch-up, which always lands inside the window).
      stale = LW{};
      changed = LW{};
      sampled = settled;
    }

    LW pulsing{};
    LW pulsing2{};
    LW committed{};  // lanes whose output committed a flip
    const double delay = gate_delay_ps_[gid];
    const double energy = net_energy_fj_[out];
    const std::uint16_t truth = cell_truth(g.kind);
    const auto base_out = static_cast<std::size_t>(out) * kLanes;
    double* tout = &time_ps_[base_out];
    double* pout_s = &pulse_start_ps_[base_out];
    double* pout_e = &pulse_end_ps_[base_out];
    double* pout2_s = &pulse2_start_ps_[base_out];
    double* pout2_e = &pulse2_end_ps_[base_out];

    const LW ch0 = in_changed[0];
    const LW ch1 = in_changed[1];
    const LW ch2 = in_changed[2];

    // Single-pulse classification. A lane whose only input activity is
    // one surviving pulse on input i (no changed inputs, no second
    // pulse, no pulse on another input) splits by sensitization at the
    // lane's settled (== stale) input state: not sensitized means the
    // generic walk would build zero output events — the lane needs no
    // walk at all (pulse_skip) — and sensitized means the walk is a
    // single closed-form excursion (thru[i] → pulse_through_lane).
    // Both reproduce pulse_lane bit-exactly; at deep over-scaling,
    // where glitch fanout makes the generic walk the dominant cost,
    // most pulse-fed lanes fall into these two classes.
    LW thru[3] = {};
    LW pulse_skip{};
    // Changed+pulse pairs: lanes whose only activity is one changed
    // input j (no bounce) plus one surviving pulse on unchanged input
    // i. Their generic walk has exactly three events with values drawn
    // from four packed words, so it collapses to a closed-form walk
    // (changed_pulse_lane) with no event-list build, truth lookups or
    // per-input pointer chasing. cp_m/cp_j/cp_i/cp_est/cp_ese hold the
    // per-pair lane masks and the two extra packed evaluations (input
    // i complemented, with j stale resp. settled).
    int cp_j[6];
    int cp_i[6];
    LW cp_m[6];
    LW cp_est[6];
    LW cp_ese[6];
    int ncp = 0;
    LW cp_all{};
    // Pure bounce class: one changed input j carrying its own return
    // pulse, every other input quiet (bounce_lane below).
    LW bn[3] = {};
    LW bn_all{};
    int bc_j[6];
    int bc_l[6];
    LW bc_m[6];
    int nbc = 0;
    LW bc_all{};
    if (lanes::any(any_pulse)) {
      const LW quiet = ~(ch0 | ch1 | ch2);
      // Per-input activity words and their "every input but X" ORs.
      // The classification below needs them as straight-line word ops,
      // not `for (t) if (t != i)` loops: GCC 12's loop vectorizer
      // miscompiles that masked-loop form over multi-sub-word lane
      // words at -O3 (wrong lane masks on the 256/512-bit engines,
      // caught by tests/test_lanes_wide.cpp), and with n <= 3 and the
      // activity arrays zero-filled past n the loop-free form is
      // smaller anyway.
      const LW pp0 = in_pulsing[0] | in_pulsing2[0];
      const LW pp1 = in_pulsing[1] | in_pulsing2[1];
      const LW pp2 = in_pulsing[2] | in_pulsing2[2];
      const LW pp[3] = {pp0, pp1, pp2};
      const LW pp_ex[3] = {pp1 | pp2, pp0 | pp2, pp0 | pp1};
      const LW ch_ex[3] = {ch1 | ch2, ch0 | ch2, ch0 | ch1};
      const LW cpp[3] = {pp0 | ch0, pp1 | ch1, pp2 | ch2};
      const LW cpp_ex[3] = {cpp[1] | cpp[2], cpp[0] | cpp[2],
                            cpp[0] | cpp[1]};
      // Packed evaluation with input i complemented and input js (or
      // none, js < 0) at its stale word: the value the gate shows
      // during an excursion of input i.
      const auto eval_comp = [&](int i, int js) {
        LW wa = js == 0 ? in_stale[0] : in_settled[0];
        LW wb = n > 1 ? (js == 1 ? in_stale[1] : in_settled[1]) : LW{};
        LW wc = n > 2 ? (js == 2 ? in_stale[2] : in_settled[2]) : LW{};
        if (i == 0) wa = ~wa;
        if (i == 1) wb = ~wb;
        if (i == 2) wc = ~wc;
        return eval_cell_packed(g.kind, wa, wb, wc);
      };
      for (int i = 0; i < n; ++i) {
        const LW only =
            in_pulsing[i] & ~in_pulsing2[i] & quiet & used & ~pp_ex[i];
        if (!lanes::any(only)) continue;
        const LW sens = (eval_comp(i, -1) ^ settled) & only;
        thru[i] = sens;
        pulse_skip |= only & ~sens;
      }
      for (int j = 0; lanes::any(any_changed) && j < n; ++j) {
        const LW chonly = in_changed[j] & ~pp[j] & used & ~ch_ex[j];
        if (!lanes::any(chonly)) continue;
        for (int i = 0; i < n; ++i) {
          if (i == j) continue;
          const LW m =
              chonly & in_pulsing[i] & ~in_pulsing2[i] & ~pp_ex[i];
          if (!lanes::any(m)) continue;
          cp_j[ncp] = j;
          cp_i[ncp] = i;
          cp_m[ncp] = m;
          cp_est[ncp] = eval_comp(i, j);
          cp_ese[ncp] = eval_comp(i, -1);
          cp_all |= m;
          ++ncp;
        }
      }
      for (int j = 0; lanes::any(any_changed) && j < n; ++j) {
        const LW m =
            in_changed[j] & in_pulsing[j] & ~in_pulsing2[j] & used &
            ~cpp_ex[j];
        bn[j] = m;
        bn_all |= m;
      }
      // Two changed inputs, one of them bouncing: j carries its first
      // flip plus a return pulse, l flips once, nothing else is
      // active. All four reachable gate values are subset words, so
      // the walk needs no extra packed evaluations (bc_lane below).
      for (int j = 0; lanes::any(any_changed) && j < n; ++j) {
        LW mj = in_changed[j] & in_pulsing[j] & ~in_pulsing2[j] & used;
        if (!lanes::any(mj)) continue;
        for (int l = 0; l < n; ++l) {
          if (l == j) continue;
          LW m = mj & in_changed[l] & ~pp[l];
          if (n == 3) m &= ~cpp[3 - j - l];
          if (!lanes::any(m)) continue;
          bc_j[nbc] = j;
          bc_l[nbc] = l;
          bc_m[nbc] = m;
          bc_all |= m;
          ++nbc;
        }
      }
    }
    const LW thru_all = thru[0] | thru[1] | thru[2];

    // -- shared per-lane bodies -------------------------------------------

    // Sensitized single flip at tc (one-changed lanes and the
    // single-commit branch of two-changed lanes).
    const auto commit_flip = [&](std::size_t k, double tc) {
      if (acct.commit(out, k, tc, energy)) lanes::toggle_lane(sampled, k);
      lanes::set_lane(committed, k);
      tout[k] = tc;
    };

    // Exactly two changed inputs i and j (i < j): the trajectory is
    // stale → mid → settled with mid = the gate with only the later
    // input still old.
    const auto two_changed_lane = [&](std::size_t k, int i, int j) {
      double tf = in_time[i][k];
      double ts = in_time[j][k];
      unsigned mid = 1u << j;
      if (ts < tf) {
        std::swap(tf, ts);
        mid = 1u << i;
      }
      const std::uint8_t mid_diff =
          lanes::lane_bit(W[mid], k) ^ lanes::lane_bit(settled, k);
      if (lanes::lane_bit(changed, k) != 0) {
        // Single commit: at the first flip when it already produces
        // the final value, else at the second.
        const double tc = (mid_diff == 0 ? tf : ts) + delay;
        commit_flip(k, tc);
      } else if (mid_diff != 0 && tf + delay <= ts) {
        // Surviving glitch pulse [tf+delay, ts+delay) on an unchanged
        // output: two commits, forwarded downstream; a capture edge
        // inside it samples the transient.
        const double t1 = tf + delay;
        const double t2 = ts + delay;
        if (acct.commit(out, k, t1, energy)) lanes::toggle_lane(sampled, k);
        if (acct.commit(out, k, t2, energy)) lanes::toggle_lane(sampled, k);
        lanes::set_lane(pulsing, k);
        pout_s[k] = t1;
        pout_e[k] = t2;
      }
    };

    // Three changed inputs: walk the four subset states in transition
    // order with the inertial rule.
    const auto three_changed_lane = [&](std::size_t k, unsigned cur0) {
      int order[3] = {0, 1, 2};
      if (in_time[order[1]][k] < in_time[order[0]][k])
        std::swap(order[0], order[1]);
      if (in_time[order[2]][k] < in_time[order[1]][k])
        std::swap(order[1], order[2]);
      if (in_time[order[1]][k] < in_time[order[0]][k])
        std::swap(order[0], order[1]);
      unsigned s = full;
      unsigned cur = cur0;
      bool pending = false;
      double commit_t = 0.0;
      // At most three commits here (three input events), so first /
      // second / last capture the whole trajectory exactly.
      double cts[3] = {0.0, 0.0, 0.0};
      double last_c = 0.0;
      int ncommits = 0;
      const auto do_commit = [&](double tc) {
        cur ^= 1u;
        if (ncommits < 3) cts[ncommits] = tc;
        ++ncommits;
        last_c = tc;
        if (acct.commit(out, k, tc, energy))
          lanes::toggle_lane(sampled, k);
        lanes::set_lane(committed, k);
      };
      for (int j = 0; j < 3; ++j) {
        const double t = in_time[order[j]][k];
        if (pending && commit_t <= t) {
          do_commit(commit_t);
          pending = false;
        }
        s &= ~(1u << order[j]);
        const auto v = static_cast<unsigned>(lanes::lane_bit(W[s], k));
        if (v != cur && !pending) {
          pending = true;
          commit_t = t + delay;
        } else if (v == cur && pending) {
          pending = false;  // inertial cancellation
        }
      }
      if (pending) do_commit(commit_t);
      if (lanes::lane_bit(changed, k) != 0) {
        if (ncommits >= 3) {
          // The output bounced on its way to the settled value
          // (stale → settled → stale → settled). Forward the full
          // trajectory — first flip plus a return pulse — instead of
          // one late flip: collapsing it to the final commit time
          // systematically over-ages downstream transitions on
          // reconvergent structures (array multipliers) and inflates
          // deep-VOS BER versus the event engine.
          tout[k] = cts[0];
          lanes::set_lane(pulsing, k);
          pout_s[k] = cts[1];
          pout_e[k] = last_c;
        } else {
          tout[k] = last_c;
        }
      } else if (ncommits >= 2) {
        lanes::set_lane(pulsing, k);
        pout_s[k] = cts[0];
        pout_e[k] = cts[1];
      }
    };

    // Lane fed by a glitch pulse: generic event walk over the ≤9 input
    // events (flip per changed input, flip-and-return pair per pulsing
    // input, all three for a bouncing changed input).
    const auto pulse_lane = [&](std::size_t k) {
      // Up to five events per input: a changed input that bounced
      // twice carries its first flip plus two return pulses.
      double ev_t[15];
      std::uint8_t ev_i[15];
      std::uint8_t ev_bit[15];
      int ne = 0;
      unsigned idx = 0;
      for (int i = 0; i < n; ++i) {
        const std::uint8_t sbit = lanes::lane_bit(in_stale[i], k);
        idx |= static_cast<unsigned>(sbit) << i;
        const auto push = [&](double t, std::uint8_t v) {
          ev_t[ne] = t;
          ev_i[ne] = static_cast<std::uint8_t>(i);
          ev_bit[ne] = v;
          ++ne;
        };
        const auto nbit = static_cast<std::uint8_t>(sbit ^ 1u);
        if (lanes::lane_bit(in_changed[i], k) != 0) {
          // First flip to the settled value; each forwarded pulse is
          // a late return trip back to the stale value and out again.
          push(in_time[i][k], nbit);
          if (lanes::lane_bit(in_pulsing[i], k) != 0) {
            push(in_ps[i][k], sbit);
            push(in_pe[i][k], nbit);
          }
          if (lanes::lane_bit(in_pulsing2[i], k) != 0) {
            push(in_ps2[i][k], sbit);
            push(in_pe2[i][k], nbit);
          }
        } else {
          // Unchanged input: each pulse is an excursion to the
          // complement of the settled value and back.
          if (lanes::lane_bit(in_pulsing[i], k) != 0) {
            push(in_ps[i][k], nbit);
            push(in_pe[i][k], sbit);
          }
          if (lanes::lane_bit(in_pulsing2[i], k) != 0) {
            push(in_ps2[i][k], nbit);
            push(in_pe2[i][k], sbit);
          }
        }
      }
      if (ne == 0) return;
      for (int x = 1; x < ne; ++x)  // insertion sort, ascending time
        for (int y = x; y > 0 && ev_t[y] < ev_t[y - 1]; --y) {
          std::swap(ev_t[y], ev_t[y - 1]);
          std::swap(ev_i[y], ev_i[y - 1]);
          std::swap(ev_bit[y], ev_bit[y - 1]);
        }
      unsigned cur = (truth >> idx) & 1u;
      bool pending = false;
      double commit_t = 0.0;
      double cts[4] = {0.0, 0.0, 0.0, 0.0};
      double last_c = 0.0;
      int ncommits = 0;
      const auto do_commit = [&](double tc) {
        cur ^= 1u;
        if (ncommits < 4) cts[ncommits] = tc;
        ++ncommits;
        last_c = tc;
        if (acct.commit(out, k, tc, energy))
          lanes::toggle_lane(sampled, k);
        lanes::set_lane(committed, k);
      };
      for (int j = 0; j < ne; ++j) {
        if (pending && commit_t <= ev_t[j]) {
          do_commit(commit_t);
          pending = false;
        }
        idx = (idx & ~(1u << ev_i[j])) |
              (static_cast<unsigned>(ev_bit[j]) << ev_i[j]);
        const unsigned v = (truth >> idx) & 1u;
        if (v != cur && !pending) {
          pending = true;
          commit_t = ev_t[j] + delay;
        } else if (v == cur && pending) {
          pending = false;  // inertial cancellation
        }
      }
      if (pending) do_commit(commit_t);
      if (lanes::lane_bit(changed, k) != 0) {
        if (ncommits >= 3) {
          // Bouncing changed output: first flip + return pulses (see
          // the three-changed walk above). Five or more commits
          // merge the tail bounces into the second pulse.
          tout[k] = cts[0];
          lanes::set_lane(pulsing, k);
          pout_s[k] = cts[1];
          pout_e[k] = ncommits == 3 ? last_c : cts[2];
          if (ncommits >= 5) {
            lanes::set_lane(pulsing2, k);
            pout2_s[k] = cts[3];
            pout2_e[k] = last_c;
          }
        } else {
          tout[k] = last_c;
        }
      } else if (ncommits >= 2) {
        lanes::set_lane(pulsing, k);
        pout_s[k] = cts[0];
        pout_e[k] = ncommits == 2 ? last_c : cts[1];
        if (ncommits >= 4) {
          lanes::set_lane(pulsing2, k);
          pout2_s[k] = cts[2];
          pout2_e[k] = last_c;
        }
      }
    };

    // Quiet lane fed by exactly one surviving pulse on input i, with
    // the gate sensitized to i (thru[i]): the generic walk reduces to
    // one excursion — a pending flip at ps + delay, inertially
    // cancelled when the pulse is narrower than the gate delay, else
    // two commits and a forwarded pulse. Matches pulse_lane commit for
    // commit on these lanes (same times, same bookkeeping) without
    // building and sorting the event list.
    const auto pulse_through_lane = [&](std::size_t k, int i) {
      const double ps = in_ps[i][k];
      const double pe = in_pe[i][k];
      const double t1 = ps + delay;
      if (t1 > pe) return;  // absorbed; a changed lane takes catch-up
      const double t2 = pe + delay;
      if (acct.commit(out, k, t1, energy)) lanes::toggle_lane(sampled, k);
      if (acct.commit(out, k, t2, energy)) lanes::toggle_lane(sampled, k);
      lanes::set_lane(committed, k);
      if (lanes::lane_bit(changed, k) != 0) {
        tout[k] = t2;  // two-commit changed output: merged single flip
      } else {
        lanes::set_lane(pulsing, k);
        pout_s[k] = t1;
        pout_e[k] = t2;
      }
    };

    // Lane whose only activity is one bouncing changed input j (its
    // first flip plus one forwarded return pulse, no other input
    // active): three events on a single input, already in ascending
    // time order by construction (a forwarded pulse window always
    // trails the flip it returns from), toggling the gate between two
    // packed values — W[1<<j] (j stale) and the settled word. Same
    // inertial walk and tail as pulse_lane, commit for commit.
    const auto bounce_lane = [&](std::size_t k, int j, const LW& w_jst) {
      const double et[3] = {in_time[j][k], in_ps[j][k], in_pe[j][k]};
      const unsigned a = static_cast<unsigned>(lanes::lane_bit(w_jst, k));
      const unsigned b = static_cast<unsigned>(lanes::lane_bit(settled, k));
      const unsigned vs[3] = {b, a, b};
      unsigned cur = a;
      bool pending = false;
      double commit_t = 0.0;
      double cts[3] = {0.0, 0.0, 0.0};
      double last_c = 0.0;
      int ncommits = 0;
      const auto do_commit = [&](double tc) {
        cur ^= 1u;
        if (ncommits < 3) cts[ncommits] = tc;
        ++ncommits;
        last_c = tc;
        if (acct.commit(out, k, tc, energy))
          lanes::toggle_lane(sampled, k);
        lanes::set_lane(committed, k);
      };
      for (int e = 0; e < 3; ++e) {
        if (pending && commit_t <= et[e]) {
          do_commit(commit_t);
          pending = false;
        }
        const unsigned v = vs[e];
        if (v != cur && !pending) {
          pending = true;
          commit_t = et[e] + delay;
        } else if (v == cur && pending) {
          pending = false;  // inertial cancellation
        }
      }
      if (pending) do_commit(commit_t);
      if (lanes::lane_bit(changed, k) != 0) {
        if (ncommits >= 3) {
          tout[k] = cts[0];
          lanes::set_lane(pulsing, k);
          pout_s[k] = cts[1];
          pout_e[k] = last_c;
        } else {
          tout[k] = last_c;
        }
      } else if (ncommits >= 2) {
        lanes::set_lane(pulsing, k);
        pout_s[k] = cts[0];
        pout_e[k] = ncommits == 2 ? last_c : cts[1];
      }
    };

    // Lane with two changed inputs where j bounces (flip + return
    // pulse) and l flips once, nothing else active: four events whose
    // reachable values are all subset words W[s]. Event order is the
    // ascending-time stable order of pulse_lane's build list — the
    // bounce chain (tj <= ps <= pe) is pre-sorted, so only l's flip
    // needs placing, with tie-breaking by build position. Up to four
    // commits, so the full generic tail (including the second
    // forwarded pulse of an unchanged output) is replicated.
    const auto bc_lane = [&](std::size_t k, int j, int l) {
      const double tl = in_time[l][k];
      double et[4] = {in_time[j][k], in_ps[j][k], in_pe[j][k], 0.0};
      // Actions: 0 = j to settled, 1 = j back to stale, 2 = j to
      // settled, 3 = l to settled.
      unsigned act[4] = {0, 1, 2, 3};
      const int pos = l < j ? static_cast<int>(et[0] < tl) +
                                  static_cast<int>(et[1] < tl) +
                                  static_cast<int>(et[2] < tl)
                            : static_cast<int>(et[0] <= tl) +
                                  static_cast<int>(et[1] <= tl) +
                                  static_cast<int>(et[2] <= tl);
      for (int x = 2; x >= pos; --x) {
        et[x + 1] = et[x];
        act[x + 1] = act[x];
      }
      et[pos] = tl;
      act[pos] = 3;
      const unsigned bj = 1u << j;
      const unsigned bl = 1u << l;
      unsigned sub = bj | bl;
      unsigned cur = static_cast<unsigned>(lanes::lane_bit(W[sub], k));
      bool pending = false;
      double commit_t = 0.0;
      double cts[4] = {0.0, 0.0, 0.0, 0.0};
      double last_c = 0.0;
      int ncommits = 0;
      const auto do_commit = [&](double tc) {
        cur ^= 1u;
        if (ncommits < 4) cts[ncommits] = tc;
        ++ncommits;
        last_c = tc;
        if (acct.commit(out, k, tc, energy))
          lanes::toggle_lane(sampled, k);
        lanes::set_lane(committed, k);
      };
      for (int e = 0; e < 4; ++e) {
        if (pending && commit_t <= et[e]) {
          do_commit(commit_t);
          pending = false;
        }
        switch (act[e]) {
          case 0: sub &= ~bj; break;
          case 1: sub |= bj; break;
          case 2: sub &= ~bj; break;
          default: sub &= ~bl; break;
        }
        const unsigned v = static_cast<unsigned>(lanes::lane_bit(W[sub], k));
        if (v != cur && !pending) {
          pending = true;
          commit_t = et[e] + delay;
        } else if (v == cur && pending) {
          pending = false;  // inertial cancellation
        }
      }
      if (pending) do_commit(commit_t);
      if (lanes::lane_bit(changed, k) != 0) {
        if (ncommits >= 3) {
          tout[k] = cts[0];
          lanes::set_lane(pulsing, k);
          pout_s[k] = cts[1];
          pout_e[k] = ncommits == 3 ? last_c : cts[2];
        } else {
          tout[k] = last_c;
        }
      } else if (ncommits >= 2) {
        lanes::set_lane(pulsing, k);
        pout_s[k] = cts[0];
        pout_e[k] = ncommits == 2 ? last_c : cts[1];
        if (ncommits >= 4) {
          lanes::set_lane(pulsing2, k);
          pout2_s[k] = cts[2];
          pout2_e[k] = last_c;
        }
      }
    };

    // Lane whose only activity is one changed input j plus one
    // surviving pulse on unchanged input i: the generic walk over its
    // three events (flip of j, excursion out and back of i), with the
    // four reachable gate values precomputed as packed words. Same
    // build order, stable sort, inertial rule and tail bookkeeping as
    // pulse_lane, commit for commit — with at most three events there
    // are at most three commits, so the second-pulse branches of the
    // generic tail can never fire and are dropped.
    const auto changed_pulse_lane = [&](std::size_t k, int j, int i,
                                        const LW& w_jst,
                                        const LW& w_jst_ic,
                                        const LW& w_jse_ic) {
      // Ascending-time event order with pulse_lane's tie-breaking: the
      // generic walk builds events in ascending input index and sorts
      // with strict comparisons, so ties keep build order. With one
      // flip (tj) and one ordered excursion (ps <= pe) that leaves
      // three possible orders, selected directly. Actions: 0 = input j
      // flips to settled, 1 = excursion of i out, 2 = excursion back.
      const double tj = in_time[j][k];
      const double ps = in_ps[i][k];
      const double pe = in_pe[i][k];
      double et[3];
      unsigned act[3];
      const bool j_first = j < i ? !(ps < tj) : tj < ps;
      const bool j_last = j < i ? pe < tj : !(tj < pe);
      if (j_first) {
        et[0] = tj; et[1] = ps; et[2] = pe;
        act[0] = 0; act[1] = 1; act[2] = 2;
      } else if (j_last) {
        et[0] = ps; et[1] = pe; et[2] = tj;
        act[0] = 1; act[1] = 2; act[2] = 0;
      } else {
        et[0] = ps; et[1] = tj; et[2] = pe;
        act[0] = 1; act[1] = 0; act[2] = 2;
      }
      // Gate value per input state, indexed (j settled ? 2 : 0) |
      // (i complemented ? 1 : 0). Unchanged inputs sit at their
      // settled values on these lanes, so four words cover the walk.
      const unsigned nib =
          static_cast<unsigned>(lanes::lane_bit(w_jst, k)) |
          (static_cast<unsigned>(lanes::lane_bit(w_jst_ic, k)) << 1) |
          (static_cast<unsigned>(lanes::lane_bit(settled, k)) << 2) |
          (static_cast<unsigned>(lanes::lane_bit(w_jse_ic, k)) << 3);
      unsigned st = 0;
      unsigned cur = nib & 1u;
      bool pending = false;
      double commit_t = 0.0;
      double cts[3] = {0.0, 0.0, 0.0};
      double last_c = 0.0;
      int ncommits = 0;
      const auto do_commit = [&](double tc) {
        cur ^= 1u;
        if (ncommits < 3) cts[ncommits] = tc;
        ++ncommits;
        last_c = tc;
        if (acct.commit(out, k, tc, energy))
          lanes::toggle_lane(sampled, k);
        lanes::set_lane(committed, k);
      };
      for (int e = 0; e < 3; ++e) {
        if (pending && commit_t <= et[e]) {
          do_commit(commit_t);
          pending = false;
        }
        st = act[e] == 0 ? (st | 2u) : (act[e] == 1 ? (st | 1u) : (st & ~1u));
        const unsigned v = (nib >> st) & 1u;
        if (v != cur && !pending) {
          pending = true;
          commit_t = et[e] + delay;
        } else if (v == cur && pending) {
          pending = false;  // inertial cancellation
        }
      }
      if (pending) do_commit(commit_t);
      if (lanes::lane_bit(changed, k) != 0) {
        if (ncommits >= 3) {
          tout[k] = cts[0];
          lanes::set_lane(pulsing, k);
          pout_s[k] = cts[1];
          pout_e[k] = last_c;
        } else {
          tout[k] = last_c;
        }
      } else if (ncommits >= 2) {
        lanes::set_lane(pulsing, k);
        pout_s[k] = cts[0];
        pout_e[k] = ncommits == 2 ? last_c : cts[1];
      }
    };

    // Cycle-mode catch-up: a lane whose truncated launch value differs
    // from its settled function but committed nothing above would stay
    // wrong for every following cycle, while the event engine's
    // in-flight transition lands within one gate delay of the edge.
    // Commit the final value at the gate's own delay (the upper bound
    // on the in-flight remainder), clamped inside the capture window —
    // a gate slower than the whole clock period must still resolve, or
    // the repair would re-fail every cycle and the net stay wrong
    // forever. The catch-up commit always lands inside the window, so
    // the lane samples its settled value.
    const auto catch_up_lane = [&](std::size_t k) {
      const double tc = std::min(delay, 0.999 * tclk_ps_);
      if (acct.commit(out, k, tc, energy))
        lanes::assign_lane(sampled, k, lanes::lane_bit(settled, k) != 0);
      tout[k] = tc;
    };

    // -- dispatch ---------------------------------------------------------

    if (word_recurrence) {
      // Streaming recurrence (streaming mode, or a cycle-safe gate in
      // cycle mode): lanes are order-free, so each changed-input class
      // is swept as a packed mask (pulse-free lanes only; pulse-fed
      // lanes take the generic walk).
      const LW pairs = (ch0 & ch1) | (ch0 & ch2) | (ch1 & ch2);
      const LW three = ch0 & ch1 & ch2 & ~any_pulse & used;
      const LW two = pairs & ~(ch0 & ch1 & ch2) & ~any_pulse & used;
      const LW one = (ch0 ^ ch1 ^ ch2) & ~pairs & ~any_pulse & used;

      // SIMD eligibility: single-threshold accounting, a full lane
      // word, and an arrival-bounded gate (cycle_safe_ — every commit
      // provably in-window, so the per-lane window test vanishes and
      // whole commit classes become branchless vector sweeps). Partial
      // words, unsafe gates and the sweep accounting keep the scalar
      // loops; both produce bit-identical per-lane values.
      bool simd_gate = false;
      (void)simd_gate;
#if defined(__AVX2__)
      if constexpr (Acct::kWordCommit)
        simd_gate = acct.nlanes == kLanes && cycle_safe_[gid] != 0;
#endif

      // Exactly one changed input: a sensitized lane commits once at
      // t + delay; a non-sensitized lane does nothing at all.
      for (int i = 0; i < n; ++i) {
        LW m = one & in_changed[i] & (W[1u << i] ^ settled);
        if (!lanes::any(m)) continue;
#if defined(__AVX2__)
        if constexpr (Acct::kWordCommit) {
          if (simd_gate) {
            acct.commit_flips_simd(m, in_time[i], delay, energy, tout);
            sampled ^= m;
            committed |= m;
            continue;
          }
        }
#endif
        lanes::for_each_lane(m, [&](std::size_t k) {
          commit_flip(k, in_time[i][k] + delay);
        });
      }

      for (int i = 0; n >= 2 && i < n - 1; ++i) {
        for (int j = i + 1; j < n; ++j) {
          LW m = two & in_changed[i] & in_changed[j];
          if (!lanes::any(m)) continue;
#if defined(__AVX2__)
          if constexpr (Acct::kWordCommit) {
            if (simd_gate) {
              // Changed-output lanes commit exactly once, vectorized;
              // unchanged-output lanes (possible glitch pulse, with
              // its pulse bookkeeping) stay scalar. Each lane is in
              // exactly one group, so per-lane commit order is
              // untouched.
              const LW mc = m & changed;
              if (lanes::any(mc)) {
                acct.commit_two_simd(mc, in_time[i], in_time[j],
                                     W[1u << i], W[1u << j], settled,
                                     delay, energy, tout);
                sampled ^= mc;
                committed |= mc;
              }
              m &= ~changed;
            }
          }
#endif
          lanes::for_each_lane(m, [&](std::size_t k) {
            two_changed_lane(k, i, j);
          });
        }
      }

      lanes::for_each_lane(three, [&](std::size_t k) {
        three_changed_lane(
            k, static_cast<unsigned>(lanes::lane_bit(stale, k)));
      });

      for (int i = 0; i < n; ++i)
        lanes::for_each_lane(thru[i], [&](std::size_t k) {
          pulse_through_lane(k, i);
        });
      for (int p = 0; p < ncp; ++p)
        lanes::for_each_lane(cp_m[p], [&](std::size_t k) {
          changed_pulse_lane(k, cp_j[p], cp_i[p], W[1u << cp_j[p]],
                             cp_est[p], cp_ese[p]);
        });
      for (int j = 0; j < n; ++j)
        lanes::for_each_lane(bn[j], [&](std::size_t k) {
          bounce_lane(k, j, W[1u << j]);
        });
      for (int p = 0; p < nbc; ++p)
        lanes::for_each_lane(bc_m[p], [&](std::size_t k) {
          bc_lane(k, bc_j[p], bc_l[p]);
        });
      lanes::for_each_lane(
          any_pulse & used & ~thru_all & ~pulse_skip & ~cp_all & ~bn_all &
              ~bc_all,
          [&](std::size_t k) { pulse_lane(k); });

      // Under the streaming invariant (stale = settled function of
      // stale inputs) nothing is ever changed-but-uncommitted, so this
      // mask is empty and step()/step_batch/sweep behavior is
      // untouched; it guards states left by an unreset step_cycle. The
      // invariant also covers cycle-safe gates in cycle mode: their
      // whole fan-in cone is cycle-safe, so every stale input equals
      // its settled value of the previous lane.
      lanes::for_each_lane(changed & ~committed & used,
                           [&](std::size_t k) { catch_up_lane(k); });
    } else {
      // Cycle mode: lane k launches from lane k-1's sampled value, so
      // lanes with input activity resolve serially in ascending lane
      // order (the stale/changed bits of lane k are only known once
      // lane k-1's sampled bit is final; for_each_lane iterates
      // ascending). Lanes without input activity need no per-lane
      // walk: their only possible commit is the catch-up, which always
      // lands in the window, so their sampled value is their settled
      // value — exactly the pre-filled word. pulse_skip lanes have no
      // changed input and provably no commits, so — like lanes without
      // input activity — their sampled value is settled (catch-up) and
      // they can skip the serial scan entirely.
      const LW active = (ch0 | ch1 | ch2 | any_pulse) & used & ~pulse_skip;
      lanes::for_each_lane(active, [&](std::size_t k) {
        const std::uint8_t sb =
            k == 0 ? state0 : lanes::lane_bit(sampled, k - 1);
        lanes::assign_lane(sampled, k, sb != 0);
        lanes::assign_lane(
            changed, k, (lanes::lane_bit(settled, k) ^ sb) != 0);
        if (lanes::lane_bit(any_pulse, k) != 0) {
          if (lanes::lane_bit(thru[0], k) != 0)
            pulse_through_lane(k, 0);
          else if (lanes::lane_bit(thru[1], k) != 0)
            pulse_through_lane(k, 1);
          else if (lanes::lane_bit(thru[2], k) != 0)
            pulse_through_lane(k, 2);
          else if (lanes::lane_bit(cp_all, k) != 0) {
            for (int p = 0; p < ncp; ++p)
              if (lanes::lane_bit(cp_m[p], k) != 0) {
                changed_pulse_lane(k, cp_j[p], cp_i[p], W[1u << cp_j[p]],
                                   cp_est[p], cp_ese[p]);
                break;
              }
          } else if (lanes::lane_bit(bn_all, k) != 0) {
            const int j = lanes::lane_bit(bn[0], k) != 0
                              ? 0
                              : (lanes::lane_bit(bn[1], k) != 0 ? 1 : 2);
            bounce_lane(k, j, W[1u << j]);
          } else if (lanes::lane_bit(bc_all, k) != 0) {
            for (int p = 0; p < nbc; ++p)
              if (lanes::lane_bit(bc_m[p], k) != 0) {
                bc_lane(k, bc_j[p], bc_l[p]);
                break;
              }
          } else {
            pulse_lane(k);
          }
        } else {
          const int c0 = lanes::lane_bit(ch0, k);
          const int c1 = lanes::lane_bit(ch1, k);
          const int c2 = lanes::lane_bit(ch2, k);
          const int cnt = c0 + c1 + c2;
          if (cnt == 1) {
            const int i = c0 ? 0 : (c1 ? 1 : 2);
            if ((lanes::lane_bit(W[1u << i], k) ^
                 lanes::lane_bit(settled, k)) != 0)
              commit_flip(k, in_time[i][k] + delay);
          } else if (cnt == 2) {
            two_changed_lane(k, c0 ? 0 : 1, c2 ? 2 : 1);
          } else if (cnt == 3) {
            three_changed_lane(k, static_cast<unsigned>(sb));
          }
        }
        if (lanes::lane_bit(changed, k) != 0 &&
            lanes::lane_bit(committed, k) == 0)
          catch_up_lane(k);
      });
      // Inactive lanes: stale(k) = sampled(k-1) is final now; the
      // changed ones take their catch-up commit (sampled stays settled).
      const LW stale_word = lanes::shift1_in(sampled, state0) & used;
      lanes::for_each_lane((settled ^ stale_word) & ~active & used,
                           [&](std::size_t k) { catch_up_lane(k); });
      stale_w_[out] = stale_word;
    }

    sampled_w_[out] = sampled;
    pulsing_w_[out] = pulsing;
    pulsing2_w_[out] = pulsing2;
  }
}

template <class LW>
void LevelizedSimulatorT<LW>::carry_state(std::size_t lanes,
                                          bool truncate) {
  const std::size_t last = lanes - 1;
  for (NetId n = 0; n < static_cast<NetId>(netlist_.num_nets()); ++n) {
    const std::uint8_t settled = lanes::lane_bit(settled_w_[n], last);
    const std::uint8_t sampled = lanes::lane_bit(sampled_w_[n], last);
    state_[n] = truncate ? sampled : settled;
    sampled_state_[n] = sampled;
  }
}

template <class LW>
void LevelizedSimulatorT<LW>::run_lanes(std::size_t lanes,
                                        std::span<StepResult> results,
                                        bool cycle_mode) {
  acc_win_e_.assign(kLanes, 0.0);
  acc_settle_.assign(kLanes, 0.0);
  acc_win_t_.assign(kLanes, 0);
  if (cycle_mode) {
    // Window-only accounting: the cycle callers define totals ==
    // window and overwrite them.
    SingleThresholdAcct<LW, true> acct{tclk_ps_,           lanes,
                                       acc_win_e_.data(),  acc_settle_.data(),
                                       acc_win_t_.data(),  nullptr,
                                       nullptr};
    run_lanes_impl<true>(lanes, acct);
  } else {
    acc_tot_e_.assign(kLanes, 0.0);
    acc_tot_t_.assign(kLanes, 0);
    SingleThresholdAcct<LW, false> acct{tclk_ps_,           lanes,
                                        acc_win_e_.data(),  acc_settle_.data(),
                                        acc_win_t_.data(),  acc_tot_e_.data(),
                                        acc_tot_t_.data()};
    run_lanes_impl<false>(lanes, acct);
  }
  for (std::size_t k = 0; k < lanes; ++k) {
    StepResult& r = results[k];
    r = StepResult{};
    r.window_energy_fj = acc_win_e_[k];
    r.toggles_in_window = acc_win_t_[k];
    r.settle_time_ps = acc_settle_[k];
    r.total_energy_fj = cycle_mode ? acc_win_e_[k] : acc_tot_e_[k];
    r.toggles_total = cycle_mode ? acc_win_t_[k] : acc_tot_t_[k];
  }

  const auto pos = netlist_.primary_outputs();
  for (std::size_t k = 0; k < lanes; ++k) {
    std::uint64_t sampled = 0;
    std::uint64_t settled = 0;
    for (std::size_t j = 0; j < pos.size(); ++j) {
      sampled |= static_cast<std::uint64_t>(
                     lanes::lane_bit(sampled_w_[pos[j]], k))
                 << j;
      settled |= static_cast<std::uint64_t>(
                     lanes::lane_bit(settled_w_[pos[j]], k))
                 << j;
    }
    results[k].sampled_outputs = sampled;
    results[k].settled_outputs = settled;
  }
  if (!observers_.empty()) dispatch_observers(lanes, results);
  carry_state(lanes, /*truncate=*/cycle_mode);
}

template <class LW>
void LevelizedSimulatorT<LW>::dispatch_observers(
    std::size_t lanes, std::span<const StepResult> results) {
  const std::size_t nnets = netlist_.num_nets();
  if (obs_level_.empty()) {
    // Topological level per net (primary inputs at 0), built once.
    obs_level_.assign(nnets, 0);
    for (const GateId gid : netlist_.topo_order()) {
      const Gate& g = netlist_.gate(gid);
      int lvl = 0;
      for (std::uint8_t i = 0; i < g.num_inputs; ++i)
        lvl = std::max(lvl, obs_level_[g.in[i]]);
      obs_level_[g.out] = lvl + 1;
    }
  }

  // Per-lane step_end: transpose each lane's per-net sampled/settled
  // bits into byte vectors so observers see exactly the spans the
  // event engine hands out.
  obs_sampled_.resize(nnets);
  obs_settled_.resize(nnets);
  for (std::size_t k = 0; k < lanes; ++k) {
    for (NetId n = 0; n < static_cast<NetId>(nnets); ++n) {
      obs_sampled_[n] = lanes::lane_bit(sampled_w_[n], k);
      obs_settled_[n] = lanes::lane_bit(settled_w_[n], k);
    }
    for (SimObserver* o : observers_)
      o->on_step_end(*this, obs_sampled_, obs_settled_, results[k]);
  }

  LaneWordSummary sum;
  sum.lanes = lanes;
  for (std::size_t k = 0; k < lanes; ++k) {
    if (results[k].sampled_outputs != results[k].settled_outputs)
      ++sum.failing_lanes;
    sum.slack_consumed_ps =
        std::max(sum.slack_consumed_ps,
                 std::max(0.0, results[k].settle_time_ps - tclk_ps_));
  }
  const LW used = lanes::mask<LW>(lanes);
  for (const GateId gid : netlist_.topo_order()) {
    const NetId out = netlist_.gate(gid).out;
    if (!lanes::any((sampled_w_[out] ^ settled_w_[out]) & used)) continue;
    if (sum.first_failing_net == invalid_net ||
        obs_level_[out] < sum.first_failing_level) {
      sum.first_failing_net = out;
      sum.first_failing_level = obs_level_[out];
    }
  }
  for (SimObserver* o : observers_) o->on_lane_word(*this, sum);
}

template <class LW>
void LevelizedSimulatorT<LW>::run_lanes_sweep(
    std::size_t lanes, std::span<const double> thresholds_ps,
    std::span<StepResult> results) {
  const std::size_t nthr = thresholds_ps.size();
  const auto pos = netlist_.primary_outputs();
  const std::size_t npo = pos.size();

  sweep_ediff_.assign((nthr + 1) * kLanes, 0.0);
  sweep_tdiff_.assign((nthr + 1) * kLanes, 0);
  sweep_sdiff_.assign(npo * (nthr + 1), LW{});
  sweep_tot_e_.assign(kLanes, 0.0);
  sweep_tot_t_.assign(kLanes, 0);
  sweep_settle_.assign(kLanes, 0.0);

  MultiThresholdAcct<LW> acct{thresholds_ps,       sweep_ediff_.data(),
                              sweep_tdiff_.data(), sweep_sdiff_.data(),
                              sweep_tot_e_.data(), sweep_tot_t_.data(),
                              sweep_settle_.data(), po_index_.data()};
  run_lanes_impl<false>(lanes, acct);

  // Prefix over buckets: threshold j sees every commit in buckets ≤ j.
  // sweep_ediff_/tdiff_ become per-threshold window sums in place;
  // sweep_sdiff_ becomes per-threshold sampled words (base: stale).
  for (std::size_t j = 1; j < nthr; ++j) {
    double* ej = &sweep_ediff_[j * kLanes];
    const double* ep = &sweep_ediff_[(j - 1) * kLanes];
    std::uint32_t* tj = &sweep_tdiff_[j * kLanes];
    const std::uint32_t* tp = &sweep_tdiff_[(j - 1) * kLanes];
    for (std::size_t k = 0; k < lanes; ++k) {
      ej[k] += ep[k];
      tj[k] += tp[k];
    }
  }
  for (std::size_t p = 0; p < npo; ++p) {
    LW run = stale_w_[pos[p]];
    for (std::size_t j = 0; j < nthr; ++j) {
      run ^= sweep_sdiff_[p * (nthr + 1) + j];
      sweep_sdiff_[p * (nthr + 1) + j] = run;
    }
  }

  for (std::size_t k = 0; k < lanes; ++k) {
    std::uint64_t settled = 0;
    for (std::size_t p = 0; p < npo; ++p)
      settled |= static_cast<std::uint64_t>(
                     lanes::lane_bit(settled_w_[pos[p]], k))
                 << p;
    for (std::size_t j = 0; j < nthr; ++j) {
      StepResult& r = results[k * nthr + j];
      std::uint64_t sampled = 0;
      for (std::size_t p = 0; p < npo; ++p)
        sampled |= static_cast<std::uint64_t>(lanes::lane_bit(
                       sweep_sdiff_[p * (nthr + 1) + j], k))
                   << p;
      r.sampled_outputs = sampled;
      r.settled_outputs = settled;
      r.window_energy_fj = sweep_ediff_[j * kLanes + k];
      r.toggles_in_window = sweep_tdiff_[j * kLanes + k];
      r.total_energy_fj = sweep_tot_e_[k];
      r.toggles_total = sweep_tot_t_[k];
      r.settle_time_ps = sweep_settle_[k];
    }
  }
  carry_state(lanes);
}

template class LevelizedSimulatorT<lanes::Word>;
template class LevelizedSimulatorT<lanes::Word256>;
template class LevelizedSimulatorT<lanes::Word512>;

}  // namespace vosim
