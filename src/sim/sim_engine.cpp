#include "src/sim/sim_engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/obs/probe.hpp"
#include "src/sim/event_sim.hpp"
#include "src/sim/levelized_sim.hpp"
#include "src/util/contracts.hpp"

namespace vosim {

std::string engine_kind_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kEvent: return "event";
    case EngineKind::kLevelized: return "levelized";
  }
  return "unknown";
}

EngineKind parse_engine_kind(const std::string& name) {
  if (name == "event") return EngineKind::kEvent;
  if (name == "levelized") return EngineKind::kLevelized;
  throw std::invalid_argument("unknown engine: " + name +
                              " (expected event|levelized)");
}

void SimEngine::attach_observer(SimObserver* obs) {
  VOSIM_EXPECTS(obs != nullptr);
  if (std::find(observers_.begin(), observers_.end(), obs) ==
      observers_.end())
    observers_.push_back(obs);
}

void SimEngine::detach_observer(SimObserver* obs) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), obs),
                   observers_.end());
}

void SimEngine::step_batch(std::span<const std::uint8_t> inputs,
                           std::size_t count,
                           std::span<StepResult> results) {
  const std::size_t npis = netlist().primary_inputs().size();
  VOSIM_EXPECTS(inputs.size() == count * npis);
  VOSIM_EXPECTS(results.size() >= count);
  for (std::size_t k = 0; k < count; ++k)
    results[k] = step(inputs.subspan(k * npis, npis));
}

void SimEngine::step_cycle_batch(std::span<const std::uint8_t> inputs,
                                 std::size_t count,
                                 std::span<StepResult> results) {
  const std::size_t npis = netlist().primary_inputs().size();
  VOSIM_EXPECTS(inputs.size() == count * npis);
  VOSIM_EXPECTS(results.size() >= count);
  for (std::size_t k = 0; k < count; ++k)
    results[k] = step_cycle(inputs.subspan(k * npis, npis));
}

std::unique_ptr<SimEngine> make_engine(const Netlist& netlist,
                                       const CellLibrary& lib,
                                       const OperatingTriad& op,
                                       const TimingSimConfig& config) {
  switch (config.engine) {
    case EngineKind::kEvent:
      return std::make_unique<TimingSimulator>(netlist, lib, op, config);
    case EngineKind::kLevelized:
      switch (lanes::resolve_lane_width(config.lane_width)) {
        case 512:
          return std::make_unique<LevelizedSimulator512>(netlist, lib, op,
                                                         config);
        case 256:
          return std::make_unique<LevelizedSimulator256>(netlist, lib, op,
                                                         config);
        default:
          return std::make_unique<LevelizedSimulator>(netlist, lib, op,
                                                      config);
      }
  }
  throw std::invalid_argument("unknown EngineKind");
}

}  // namespace vosim
