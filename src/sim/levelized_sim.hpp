// Bit-parallel levelized timing simulation: the fast SimEngine backend.
//
// The netlist is levelized once (the topological order computed by
// Netlist::finalize) and every pass evaluates up to kLanes patterns at
// a time, one pattern per bit of a packed lane word per net. The
// engine is templated on the lane word (DESIGN.md §7): 64 lanes
// (uint64_t, the portable baseline), 256 lanes (lanes::Word256,
// AVX2-sized) or 512 lanes (lanes::Word512, AVX-512-sized) per pass,
// with make_engine picking the widest width the build and CPU support.
// Timing errors are modeled without an event queue: each gate runs a
// per-lane miniature event simulation over its own input transitions
// (data-dependent times bounded by the STA arrival model,
// src/sta/sta.hpp) and forwards at most a first flip plus one return
// pulse downstream. A lane whose transitions all exceed Tclk latches
// its stale lane value (the previous pattern's settled value),
// reproducing the paper's VOS timing-error semantics.
//
// The per-lane serial walks (edge-crossing gates in cycle mode, pulse
// event walks, at-edge truncation) stay scalar at every width by
// design: only the word-level masks and the whole-word dispatch widen,
// so each lane executes exactly the operation sequence the u64 engine
// would — the wide engines are bit-exact against the 64-lane one
// (pinned by tests/test_lanes_wide.cpp), not merely statistically
// close.
//
// Divergences from the event-driven reference (DESIGN.md §7): a net
// forwards at most one flip plus two pulses per operation (longer
// chatter merges its tail bounces into the second pulse), so deeply
// over-scaled reconvergent structures can still drift by fractions of
// a BER percentage point against the event engine.
#ifndef VOSIM_SIM_LEVELIZED_SIM_HPP
#define VOSIM_SIM_LEVELIZED_SIM_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/netlist/netlist.hpp"
#include "src/sim/sim_engine.hpp"
#include "src/tech/operating_point.hpp"
#include "src/util/lanes.hpp"

namespace vosim {

/// Levelized bit-parallel simulator bound to one netlist, library and
/// triad, templated on the lane word. Same streaming-state semantics
/// as TimingSimulator: lane k's stale value is lane k-1's settled
/// value (lane 0 continues from the state left by the previous
/// reset/step/step_batch). In cycle-batch mode (step_cycle_batch) lane
/// k is instead clock cycle k and launches from lane k-1's *sampled*
/// (at-edge truncated) value — DESIGN.md §10.
template <class LaneWord>
class LevelizedSimulatorT final : public SimEngine {
 public:
  /// The packed lane word type of this instantiation.
  using Word = LaneWord;

  /// Patterns (or, in cycle-batch mode, cycles) evaluated per packed
  /// pass — one per bit of a lane word.
  static constexpr std::size_t kLanes = lanes::lane_count_v<LaneWord>;

  LevelizedSimulatorT(const Netlist& netlist, const CellLibrary& lib,
                      const OperatingTriad& op,
                      const TimingSimConfig& config = {});

  // -- SimEngine ---------------------------------------------------------
  EngineKind kind() const noexcept override { return EngineKind::kLevelized; }
  const Netlist& netlist() const noexcept override { return netlist_; }
  const OperatingTriad& triad() const noexcept override { return op_; }
  std::size_t lanes_per_pass() const noexcept override { return kLanes; }

  void reset(std::span<const std::uint8_t> inputs) override;
  StepResult step(std::span<const std::uint8_t> inputs) override;

  /// Clocked step: one single-lane pass whose carried state is the
  /// *sampled* (at-edge) value of every net instead of the settled one,
  /// so the next cycle launches from the truncated state. Unlike the
  /// event backend, transitions past the edge are dropped rather than
  /// kept in flight (the levelized model has no cross-pass event queue);
  /// the next cycle's trajectory runs from the truncated values toward
  /// the new settled function with fresh arrival times. DESIGN.md §10
  /// quantifies the divergence. See SimEngine::step_cycle.
  StepResult step_cycle(std::span<const std::uint8_t> inputs) override;

  void step_batch(std::span<const std::uint8_t> inputs, std::size_t count,
                  std::span<StepResult> results) override;

  /// Native kLanes-cycles-per-pass clocked batch: bit-exact with
  /// `count` sequential step_cycle() calls (outputs, per-cycle energy,
  /// commit order), but the packed lanes stay alive across cycles —
  /// lane k of every net launches from lane k-1's sampled (truncated)
  /// value, so a whole word of consecutive cycles costs one levelized
  /// pass instead of kLanes. See SimEngine::step_cycle_batch.
  void step_cycle_batch(std::span<const std::uint8_t> inputs,
                        std::size_t count,
                        std::span<StepResult> results) override;

  /// One timing pass, many capture thresholds: simulates the batch with
  /// this simulator's delays and evaluates every pattern against each
  /// clock threshold (ps, ascending), filling
  /// results[i * thresholds.size() + j] exactly as if step_batch had
  /// run with Tclk = thresholds[j]. Because supply and body bias scale
  /// every gate delay by one common factor (gate_delay_ps = nominal ×
  /// delay_scale(Vdd, Vbb)) and the inertial pulse-survival rule is
  /// scale-invariant, a whole Tclk/Vdd/Vbb characterization grid
  /// reduces to one normalized timing pass per die: triad (T, V, B)
  /// is threshold T·1e3·delay_scale(ref)/delay_scale(V, B) with window
  /// energies scaled by (V/V_ref)² — see characterize_dut.
  /// Leakage is NOT included in the energies (it is per-triad).
  /// After this call sampled_values() reflects no single threshold.
  void step_batch_sweep(std::span<const std::uint8_t> inputs,
                        std::size_t count,
                        std::span<const double> thresholds_ps,
                        std::span<StepResult> results);

  /// Moves the capture threshold on the same die: rescales leakage to
  /// the new period and recomputes cycle-safety against the cached STA
  /// arrivals — exactly the values a fresh construction at the new
  /// period would produce. O(gates), no RNG redraw.
  bool retarget_tclk_ps(double tclk_ps) override;

  double leakage_energy_fj_per_op() const noexcept override {
    return leakage_energy_fj_;
  }
  std::span<const std::uint8_t> sampled_values() const noexcept override {
    return sampled_state_;
  }
  std::span<const std::uint8_t> settled_values() const noexcept override {
    return state_;
  }

  // -- levelized-engine specifics ----------------------------------------
  /// STA worst-case arrival of a net at this triad, with this die's
  /// per-gate variation applied (ps).
  double arrival_ps(NetId net) const { return arrival_ps_.at(net); }
  /// Latest primary-output arrival (ps).
  double critical_path_ps() const noexcept { return critical_path_ps_; }
  /// Assigned delay of a gate (after variation), ps.
  double gate_delay(GateId gid) const { return gate_delay_ps_.at(gid); }

 private:
  /// Evaluates one packed pass over `lanes` lanes already loaded into
  /// the primary-input lane words; `acct` records every net commit
  /// (transition) and decides window membership for sampling. With
  /// kCycleMode the lanes are consecutive clock cycles: each net's lane
  /// k launches from its own lane k-1 sampled value and active lanes
  /// resolve in ascending order (DESIGN.md §10); otherwise the lanes
  /// are independent streamed patterns.
  template <bool kCycleMode, class Acct>
  void run_lanes_impl(std::size_t lanes, Acct& acct);

  /// Single-threshold pass at this simulator's Tclk, filling `results`.
  /// `cycle_mode` selects the cross-cycle lane semantics and carries
  /// the sampled (at-edge) values instead of the settled ones into the
  /// next pass (step_cycle semantics).
  void run_lanes(std::size_t lanes, std::span<StepResult> results,
                 bool cycle_mode = false);

  /// Multi-threshold pass; results is lanes × thresholds pattern-major.
  void run_lanes_sweep(std::size_t lanes,
                       std::span<const double> thresholds_ps,
                       std::span<StepResult> results);

  /// Carries the last lane's settled (and sampled) values into state_;
  /// with `truncate` the sampled values become state_ (step_cycle).
  void carry_state(std::size_t lanes, bool truncate = false);

  /// Observer fan-out after a single-threshold pass: per-lane
  /// on_step_end (per-net values transposed out of the lane words) and
  /// one on_lane_word summary. Called only when observers are attached
  /// — run_lanes pays a single branch otherwise. The sweep path
  /// (run_lanes_sweep) never dispatches (see SimEngine::attach_observer).
  void dispatch_observers(std::size_t lanes,
                          std::span<const StepResult> results);

  const Netlist& netlist_;
  OperatingTriad op_;
  double tclk_ps_ = 0.0;
  double leakage_energy_fj_ = 0.0;
  double leak_nw_scaled_ = 0.0;  ///< leakage power at this V/B (nW)
  double critical_path_ps_ = 0.0;

  std::vector<double> gate_delay_ps_;  // per gate, incl. variation
  std::vector<double> net_energy_fj_;  // per net, energy of one toggle
  std::vector<double> arrival_ps_;     // per net, STA bound
  // Per gate: every commit this gate can produce lands strictly inside
  // the capture window (STA arrival < Tclk). In cycle mode its sampled
  // word then always equals its settled word and the cross-cycle
  // recurrence degenerates to the streaming one — the gate dispatches
  // with the packed streaming masks instead of the serial lane scan.
  std::vector<std::uint8_t> cycle_safe_;

  // Streaming state carried between operations (one value per net).
  std::vector<std::uint8_t> state_;          // settled after last op
  std::vector<std::uint8_t> sampled_state_;  // sampled at last op's edge

  // Per-pass scratch, indexed by net (lane words) / net*kLanes (times).
  std::vector<LaneWord> settled_w_;
  std::vector<LaneWord> stale_w_;
  std::vector<LaneWord> sampled_w_;
  // Transition time per net per lane. Deliberately *uninitialized*
  // (make_unique_for_overwrite): every read is guarded by a
  // current-pass mask bit (in_changed / pulsing) whose lane was written
  // earlier in the same pass, and skipping the multi-hundred-KB zero
  // fill keeps construction cheap enough to rebuild per triad.
  std::unique_ptr<double[]> time_ps_;
  // Glitch pulses: lanes flagged in pulsing_w_ carry a surviving pulse
  // spanning [pulse_start, pulse_end) — on an unchanged net the value
  // inside the pulse is the complement of the settled value; on a
  // changed (bouncing) net the pulse is the return trip back to the
  // stale value after the first flip at time_ps_. A second pulse
  // (pulsing2_w_) captures four-commit chatter exactly; longer chatter
  // merges its tail into the second pulse. Pulses are propagated
  // downstream and sampled when the capture edge falls inside them.
  std::vector<LaneWord> pulsing_w_;
  std::unique_ptr<double[]> pulse_start_ps_;  // uninitialized, see above
  std::unique_ptr<double[]> pulse_end_ps_;
  std::vector<LaneWord> pulsing2_w_;
  std::unique_ptr<double[]> pulse2_start_ps_;
  std::unique_ptr<double[]> pulse2_end_ps_;

  // Per-lane single-threshold accumulators (SoA; folded into the
  // per-lane StepResults by run_lanes). Totals are only tracked in
  // streaming mode — cycle mode defines totals == window.
  std::vector<double> acc_win_e_;
  std::vector<double> acc_tot_e_;
  std::vector<double> acc_settle_;
  std::vector<std::uint32_t> acc_win_t_;
  std::vector<std::uint32_t> acc_tot_t_;

  // Observer-dispatch scratch (only touched with observers attached):
  // per-net transposed values for one lane and the lazily built
  // per-net topological level table behind LaneWordSummary.
  std::vector<std::uint8_t> obs_sampled_;
  std::vector<std::uint8_t> obs_settled_;
  std::vector<int> obs_level_;

  // Sweep support: primary-output index per net (-1 if not a PO) and
  // per-batch threshold-bucket scratch (sized on first sweep call).
  std::vector<std::int32_t> po_index_;
  std::vector<double> sweep_ediff_;        // (nthr+1) × kLanes
  std::vector<std::uint32_t> sweep_tdiff_;  // (nthr+1) × kLanes
  std::vector<LaneWord> sweep_sdiff_;       // nPO × (nthr+1)
  std::vector<double> sweep_tot_e_;         // per lane
  std::vector<std::uint32_t> sweep_tot_t_;  // per lane
  std::vector<double> sweep_settle_;        // per lane
};

// The three lane widths are always compiled (the wide words degrade to
// scalar sub-word loops without SIMD flags), so any width can be
// forced on any host; make_engine's auto dispatch picks the widest
// accelerated one (lanes::resolve_lane_width).
extern template class LevelizedSimulatorT<lanes::Word>;
extern template class LevelizedSimulatorT<lanes::Word256>;
extern template class LevelizedSimulatorT<lanes::Word512>;

/// The 64-lane instantiation — the portable baseline and the name the
/// rest of the codebase grew up with.
using LevelizedSimulator = LevelizedSimulatorT<lanes::Word>;
/// 256-lane (AVX2-sized) instantiation.
using LevelizedSimulator256 = LevelizedSimulatorT<lanes::Word256>;
/// 512-lane (AVX-512-sized) instantiation.
using LevelizedSimulator512 = LevelizedSimulatorT<lanes::Word512>;

}  // namespace vosim

#endif  // VOSIM_SIM_LEVELIZED_SIM_HPP
