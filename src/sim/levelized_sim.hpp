// Bit-parallel levelized timing simulation: the fast SimEngine backend.
//
// The netlist is levelized once (the topological order computed by
// Netlist::finalize) and every pass evaluates up to 64 patterns at a
// time, one pattern per bit of a packed uint64_t lane word per net.
// Timing errors are modeled without an event queue: each gate runs a
// per-lane miniature event simulation over its own input transitions
// (data-dependent times bounded by the STA arrival model,
// src/sta/sta.hpp) and forwards at most a first flip plus one return
// pulse downstream. A lane whose transitions all exceed Tclk latches
// its stale lane value (the previous pattern's settled value),
// reproducing the paper's VOS timing-error semantics.
//
// Divergences from the event-driven reference (DESIGN.md §7): a net
// forwards at most one flip plus two pulses per operation (longer
// chatter merges its tail bounces into the second pulse), so deeply
// over-scaled reconvergent structures can still drift by fractions of
// a BER percentage point against the event engine.
#ifndef VOSIM_SIM_LEVELIZED_SIM_HPP
#define VOSIM_SIM_LEVELIZED_SIM_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "src/netlist/netlist.hpp"
#include "src/sim/sim_engine.hpp"
#include "src/tech/operating_point.hpp"

namespace vosim {

/// Levelized bit-parallel simulator bound to one netlist, library and
/// triad. Same streaming-state semantics as TimingSimulator: lane k's
/// stale value is lane k-1's settled value (lane 0 continues from the
/// state left by the previous reset/step/step_batch).
class LevelizedSimulator final : public SimEngine {
 public:
  /// Patterns evaluated per packed pass.
  static constexpr std::size_t kLanes = 64;

  LevelizedSimulator(const Netlist& netlist, const CellLibrary& lib,
                     const OperatingTriad& op,
                     const TimingSimConfig& config = {});

  // -- SimEngine ---------------------------------------------------------
  EngineKind kind() const noexcept override { return EngineKind::kLevelized; }
  const Netlist& netlist() const noexcept override { return netlist_; }
  const OperatingTriad& triad() const noexcept override { return op_; }

  void reset(std::span<const std::uint8_t> inputs) override;
  StepResult step(std::span<const std::uint8_t> inputs) override;

  /// Clocked step: one single-lane pass whose carried state is the
  /// *sampled* (at-edge) value of every net instead of the settled one,
  /// so the next cycle launches from the truncated state. Unlike the
  /// event backend, transitions past the edge are dropped rather than
  /// kept in flight (the levelized model has no cross-pass event queue);
  /// the next cycle's trajectory runs from the truncated values toward
  /// the new settled function with fresh arrival times. DESIGN.md §10
  /// quantifies the divergence. See SimEngine::step_cycle.
  StepResult step_cycle(std::span<const std::uint8_t> inputs) override;

  void step_batch(std::span<const std::uint8_t> inputs, std::size_t count,
                  std::span<StepResult> results) override;

  /// One timing pass, many capture thresholds: simulates the batch with
  /// this simulator's delays and evaluates every pattern against each
  /// clock threshold (ps, ascending), filling
  /// results[i * thresholds.size() + j] exactly as if step_batch had
  /// run with Tclk = thresholds[j]. Because supply and body bias scale
  /// every gate delay by one common factor (gate_delay_ps = nominal ×
  /// delay_scale(Vdd, Vbb)) and the inertial pulse-survival rule is
  /// scale-invariant, a whole Tclk/Vdd/Vbb characterization grid
  /// reduces to one normalized timing pass per die: triad (T, V, B)
  /// is threshold T·1e3·delay_scale(ref)/delay_scale(V, B) with window
  /// energies scaled by (V/V_ref)² — see characterize_dut.
  /// Leakage is NOT included in the energies (it is per-triad).
  /// After this call sampled_values() reflects no single threshold.
  void step_batch_sweep(std::span<const std::uint8_t> inputs,
                        std::size_t count,
                        std::span<const double> thresholds_ps,
                        std::span<StepResult> results);

  double leakage_energy_fj_per_op() const noexcept override {
    return leakage_energy_fj_;
  }
  std::span<const std::uint8_t> sampled_values() const noexcept override {
    return sampled_state_;
  }
  std::span<const std::uint8_t> settled_values() const noexcept override {
    return state_;
  }

  // -- levelized-engine specifics ----------------------------------------
  /// STA worst-case arrival of a net at this triad, with this die's
  /// per-gate variation applied (ps).
  double arrival_ps(NetId net) const { return arrival_ps_.at(net); }
  /// Latest primary-output arrival (ps).
  double critical_path_ps() const noexcept { return critical_path_ps_; }
  /// Assigned delay of a gate (after variation), ps.
  double gate_delay(GateId gid) const { return gate_delay_ps_.at(gid); }

 private:
  /// Evaluates one packed pass over `lanes` patterns already loaded into
  /// the primary-input lane words; `acct` records every net commit
  /// (transition) and decides window membership for sampling.
  template <class Acct>
  void run_lanes_impl(std::size_t lanes, Acct& acct);

  /// Single-threshold pass at this simulator's Tclk, filling `results`.
  /// `truncate_state` carries the sampled (at-edge) values instead of
  /// the settled ones into the next pass (step_cycle semantics).
  void run_lanes(std::size_t lanes, std::span<StepResult> results,
                 bool truncate_state = false);

  /// Multi-threshold pass; results is lanes × thresholds pattern-major.
  void run_lanes_sweep(std::size_t lanes,
                       std::span<const double> thresholds_ps,
                       std::span<StepResult> results);

  /// Carries the last lane's settled (and sampled) values into state_;
  /// with `truncate` the sampled values become state_ (step_cycle).
  void carry_state(std::size_t lanes, bool truncate = false);

  const Netlist& netlist_;
  OperatingTriad op_;
  double tclk_ps_ = 0.0;
  double leakage_energy_fj_ = 0.0;
  double critical_path_ps_ = 0.0;

  std::vector<double> gate_delay_ps_;  // per gate, incl. variation
  std::vector<double> net_energy_fj_;  // per net, energy of one toggle
  std::vector<double> arrival_ps_;     // per net, STA bound

  // Streaming state carried between operations (one value per net).
  std::vector<std::uint8_t> state_;          // settled after last op
  std::vector<std::uint8_t> sampled_state_;  // sampled at last op's edge

  // Per-pass scratch, indexed by net (lane words) / net*kLanes (times).
  std::vector<std::uint64_t> settled_w_;
  std::vector<std::uint64_t> stale_w_;
  std::vector<std::uint64_t> sampled_w_;
  std::vector<double> time_ps_;  // transition time per net per lane
  // Glitch pulses: lanes flagged in pulsing_w_ carry a surviving pulse
  // spanning [pulse_start, pulse_end) — on an unchanged net the value
  // inside the pulse is the complement of the settled value; on a
  // changed (bouncing) net the pulse is the return trip back to the
  // stale value after the first flip at time_ps_. A second pulse
  // (pulsing2_w_) captures four-commit chatter exactly; longer chatter
  // merges its tail into the second pulse. Pulses are propagated
  // downstream and sampled when the capture edge falls inside them.
  std::vector<std::uint64_t> pulsing_w_;
  std::vector<double> pulse_start_ps_;
  std::vector<double> pulse_end_ps_;
  std::vector<std::uint64_t> pulsing2_w_;
  std::vector<double> pulse2_start_ps_;
  std::vector<double> pulse2_end_ps_;

  // Sweep support: primary-output index per net (-1 if not a PO) and
  // per-batch threshold-bucket scratch (sized on first sweep call).
  std::vector<std::int32_t> po_index_;
  std::vector<double> sweep_ediff_;        // (nthr+1) × kLanes
  std::vector<std::uint32_t> sweep_tdiff_;  // (nthr+1) × kLanes
  std::vector<std::uint64_t> sweep_sdiff_;  // nPO × (nthr+1)
  std::vector<double> sweep_tot_e_;         // per lane
  std::vector<std::uint32_t> sweep_tot_t_;  // per lane
  std::vector<double> sweep_settle_;        // per lane
};

}  // namespace vosim

#endif  // VOSIM_SIM_LEVELIZED_SIM_HPP
