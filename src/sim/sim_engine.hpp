// SimEngine: the common interface of the gate-level VOS simulators.
//
// The characterization flow (Fig. 4) runs ~20k patterns per operating
// triad over a large Tclk/Vdd/Vbb grid; every consumer — characterizer,
// apps, runtime controllers, benches — talks to the simulator through
// this interface so the backend can be chosen per sweep:
//
//   kEvent      event-driven simulation with inertial delays — the
//               accuracy reference (src/sim/event_sim.hpp).
//   kLevelized  bit-parallel levelized simulation — one topological
//               pass evaluates a lane word of packed patterns (64 in
//               a uint64_t by default, 256/512 in wide lane words),
//               with per-lane transition times bounded by the STA
//               arrival model (src/sim/levelized_sim.hpp). An order
//               of magnitude faster on full-grid sweeps.
//
// DESIGN.md §7 documents the levelized error model and when the two
// backends diverge (glitches, inertial pulse filtering).
#ifndef VOSIM_SIM_SIM_ENGINE_HPP
#define VOSIM_SIM_SIM_ENGINE_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/netlist/netlist.hpp"
#include "src/tech/operating_point.hpp"

namespace vosim {

class SimObserver;  // src/obs/probe.hpp

/// Available simulation backends.
enum class EngineKind : std::uint8_t {
  kEvent,      ///< event queue + inertial delays (accuracy reference)
  kLevelized,  ///< bit-parallel levelized arrival-time model (fast)
};

/// Display/CLI name: "event" or "levelized".
std::string engine_kind_name(EngineKind kind);

/// Parses "event" / "levelized"; throws std::invalid_argument otherwise.
EngineKind parse_engine_kind(const std::string& name);

/// Simulator knobs, shared by both backends.
struct TimingSimConfig {
  /// Per-gate log-normal delay variation sigma (0 = deterministic).
  /// Models within-die process variation; one sample is drawn per gate
  /// at construction ("one die") and reused across operations. Both
  /// backends draw the identical sample sequence, so a given
  /// (sigma, seed) names the same die under either engine.
  double variation_sigma = 0.0;
  /// Seed for the per-gate variation sample.
  std::uint64_t variation_seed = 1;
  /// Die-wide gate-delay multiplier (die-to-die process corner): every
  /// gate's delay is scaled by this on top of the triad's voltage scale
  /// and the per-gate variation sample. 1.0 = the nominal die. The
  /// fleet subsystem (src/fleet) draws one value per chip instance so a
  /// slow die is slow under every triad and both engines.
  double delay_scale = 1.0;
  /// Die-wide leakage multiplier (die-to-die corner), applied on top of
  /// the triad's voltage-dependent leakage scale. 1.0 = nominal die.
  double leakage_scale = 1.0;
  /// Asks trace-capable wrappers (SeqSim) to attach bundled
  /// TraceRecorder observers for waveform export (src/sim/vcd.hpp,
  /// src/seq/seq_vcd.hpp). Off by default: tracing allocates per
  /// event. Event engine only. For a bare engine, attach a
  /// TraceRecorder or VcdObserver (src/obs/probe.hpp) yourself — the
  /// engines themselves no longer record ad-hoc traces.
  bool record_trace = false;
  /// Backend built by make_engine() and the engine-generic wrappers
  /// (VosDutSim, characterize_dut, AdaptiveVosUnit).
  EngineKind engine = EngineKind::kEvent;
  /// Lanes per levelized pass: 64, 256, 512, or 0 = auto (resolved by
  /// lanes::resolve_lane_width against the --lane-width override and
  /// the VOSIM_LANE_WIDTH environment variable; plain auto is 64).
  /// Ignored by the event backend. All widths are bit-exact against
  /// each other; wider words only pay off on low-activity workloads
  /// (lanes.hpp, DESIGN.md §7), which is why auto does not chase the
  /// widest compiled SIMD tier (CMake option VOSIM_SIMD).
  std::size_t lane_width = 0;
};

/// One committed transition (for waveform dumps).
struct TraceEvent {
  double time_ps = 0.0;
  NetId net = invalid_net;
  std::uint8_t value = 0;
};

/// Result of simulating one clocked operation (two-vector transition).
struct StepResult {
  /// Values sampled at t = Tclk (what the capture registers see).
  std::uint64_t sampled_outputs = 0;  // packed in primary-output order
  /// Fully settled values (t → ∞), i.e. the functionally correct result.
  std::uint64_t settled_outputs = 0;
  /// Time of the last committed transition (ps).
  double settle_time_ps = 0.0;
  /// Dynamic energy of transitions inside the clock window [0, Tclk) —
  /// in a pipeline, switching after the clock edge belongs to the next
  /// operation, and deep VOS truncates carry activity (DESIGN.md §6.3).
  double window_energy_fj = 0.0;
  /// Dynamic energy of *all* transitions until quiescence (what a
  /// non-pipelined accounting would charge; see the energy-window
  /// ablation bench).
  double total_energy_fj = 0.0;
  /// Transition counts (inside the window / total until settled).
  std::uint32_t toggles_in_window = 0;
  std::uint32_t toggles_total = 0;
};

/// Abstract gate-level simulator bound to one netlist, library and triad.
///
/// Usage: reset() to establish the initial state, then step() per
/// operation (state persists between steps like a real datapath between
/// clock edges, DESIGN.md §6.5) or step_batch() to stream many
/// operations with the same semantics.
class SimEngine {
 public:
  virtual ~SimEngine() = default;

  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  virtual EngineKind kind() const noexcept = 0;
  virtual const Netlist& netlist() const noexcept = 0;
  virtual const OperatingTriad& triad() const noexcept = 0;

  /// Patterns/cycles this engine evaluates per internal pass (1 for
  /// the event backend, the lane count for the levelized backends).
  /// Callers that chunk work — SeqSim's cycle batching, the
  /// characterizer's streaming segments — size their chunks as a
  /// multiple of this so no pass runs partially filled.
  virtual std::size_t lanes_per_pass() const noexcept { return 1; }

  /// Applies input values and lets the circuit settle completely
  /// (no sampling, no energy accounting).
  virtual void reset(std::span<const std::uint8_t> inputs) = 0;

  /// Applies a new input vector at t = 0, propagates it, samples at
  /// Tclk and settles. Returns packed outputs and energy.
  virtual StepResult step(std::span<const std::uint8_t> inputs) = 0;

  /// Clocked variant for sequential (pipelined) operation: propagates
  /// only until the capture edge at Tclk. The at-edge net values —
  /// including nets whose final transition has not arrived — become the
  /// persistent launch state of the next cycle, so timing errors latch
  /// and propagate across cycles instead of being settled away.
  ///
  ///   - sampled_outputs: values at the Tclk edge (what the capture
  ///     registers latch).
  ///   - settled_outputs: the functional (zero-delay) result for these
  ///     inputs — the Razor shadow-register reference.
  ///   - window_energy_fj / toggles_in_window: every commit inside this
  ///     cycle, which on the event backend includes transitions launched
  ///     in earlier cycles that land in this one (still-in-flight events
  ///     carry across the edge with their remaining delay). The
  ///     levelized backend truncates in-flight transitions at the edge
  ///     instead; the next cycle relaunches from the truncated state.
  ///   - total_energy_fj == window_energy_fj here (nothing is simulated
  ///     past the edge).
  ///
  /// Do not interleave step() and step_cycle() on one engine without a
  /// reset() in between: step() assumes a quiescent circuit.
  virtual StepResult step_cycle(std::span<const std::uint8_t> inputs) = 0;

  /// Streams `count` operations: pattern k occupies
  /// inputs[k*P, (k+1)*P) where P = netlist().primary_inputs().size(),
  /// and its outcome lands in results[k]. Equivalent to `count` calls
  /// to step(); the levelized backend overrides this to evaluate one
  /// lane word of patterns per pass in packed lanes.
  virtual void step_batch(std::span<const std::uint8_t> inputs,
                          std::size_t count, std::span<StepResult> results);

  /// Streams `count` consecutive clock cycles of ONE clocked stream:
  /// cycle k's inputs occupy inputs[k*P, (k+1)*P) and its outcome lands
  /// in results[k]. Semantically identical to `count` calls to
  /// step_cycle() — cycle k launches from cycle k-1's truncated at-edge
  /// state — and the default implementation is exactly that scalar
  /// loop (the event engine keeps its cross-edge event queue that way).
  /// The levelized backend overrides this to run one lane word of
  /// cycles per packed pass, bit-exact against the scalar loop.
  virtual void step_cycle_batch(std::span<const std::uint8_t> inputs,
                                std::size_t count,
                                std::span<StepResult> results);

  /// Rebinds the capture threshold (ps) without rebuilding the engine:
  /// the die (delay assignment, variation draw, energies) is untouched,
  /// only the clock-edge comparison and its derived quantities (leakage
  /// per period, cycle-safety) move. The levelized backend supports
  /// this — it is how the characterizer's normalized grid sweep walks
  /// a whole Tclk ladder on one die — and returns true; backends that
  /// bake the period into their structure return false and are left
  /// unchanged. Call reset() afterwards before reading state.
  virtual bool retarget_tclk_ps(double) { return false; }

  /// Per-operation leakage energy at this triad (fJ): leakage power
  /// integrated over one clock period.
  virtual double leakage_energy_fj_per_op() const noexcept = 0;

  /// Values sampled at the last step's clock edge, one per net. After
  /// step_batch(), the last pattern's sample.
  virtual std::span<const std::uint8_t> sampled_values() const noexcept = 0;

  /// Fully settled values after the last reset/step (one per net).
  virtual std::span<const std::uint8_t> settled_values() const noexcept = 0;

  /// Registers an observer for simulation callbacks (src/obs/probe.hpp;
  /// DESIGN.md §13). Observers are borrowed, never owned — they must
  /// outlive the engine or be detached first — and are invoked
  /// synchronously on the simulating thread in attach order. Default
  /// off: with no observers attached every hot-path dispatch site pays
  /// exactly one !observers_.empty() branch. Attaching twice is a
  /// no-op. Note: the levelized multi-threshold sweep
  /// (step_batch_sweep) does not dispatch — observer consumers must
  /// route through step/step_batch/step_cycle_batch.
  void attach_observer(SimObserver* obs);
  /// Unregisters a previously attached observer (no-op when absent).
  void detach_observer(SimObserver* obs);
  /// True when at least one observer is attached.
  bool has_observers() const noexcept { return !observers_.empty(); }

 protected:
  SimEngine() = default;

  std::vector<SimObserver*> observers_;
};

/// Builds the backend selected by `config.engine`.
std::unique_ptr<SimEngine> make_engine(const Netlist& netlist,
                                       const CellLibrary& lib,
                                       const OperatingTriad& op,
                                       const TimingSimConfig& config = {});

}  // namespace vosim

#endif  // VOSIM_SIM_SIM_ENGINE_HPP
