#include "src/sim/vos_adder.hpp"

#include "src/util/contracts.hpp"

namespace vosim {

VosAdderSim::VosAdderSim(const AdderNetlist& adder, const CellLibrary& lib,
                         const OperatingTriad& op,
                         const TimingSimConfig& config)
    : adder_(adder),
      pins_(adder),
      sim_(make_engine(adder.netlist, lib, op, config)) {
  input_buf_.assign(adder_.netlist.primary_inputs().size(), 0);
  // A carry-in pin, if present, is held at zero (the paper's operators
  // are plain two-operand adders).
  reset(0, 0);
}

VosAddResult VosAdderSim::unpack(const StepResult& st) const {
  VosAddResult out;
  out.sampled = pins_.gather_sum(st.sampled_outputs);
  out.settled = pins_.gather_sum(st.settled_outputs);
  out.energy_fj = st.window_energy_fj + sim_->leakage_energy_fj_per_op();
  out.settle_time_ps = st.settle_time_ps;
  return out;
}

void VosAdderSim::reset(std::uint64_t a, std::uint64_t b) {
  pins_.fill_inputs(a, b, input_buf_.data());
  sim_->reset(input_buf_);
}

VosAddResult VosAdderSim::add(std::uint64_t a, std::uint64_t b) {
  pins_.fill_inputs(a, b, input_buf_.data());
  return unpack(sim_->step(input_buf_));
}

void VosAdderSim::add_batch(std::span<const std::uint64_t> a,
                            std::span<const std::uint64_t> b,
                            std::span<VosAddResult> results) {
  VOSIM_EXPECTS(a.size() == b.size());
  VOSIM_EXPECTS(results.size() >= a.size());
  const std::size_t count = a.size();
  if (count == 0) return;
  const std::size_t npis = input_buf_.size();
  // Unset PIs (e.g. a carry-in pin) stay zero across the whole batch.
  batch_buf_.assign(count * npis, 0);
  step_buf_.resize(count);
  for (std::size_t k = 0; k < count; ++k)
    pins_.fill_inputs(a[k], b[k], batch_buf_.data() + k * npis);
  sim_->step_batch(batch_buf_, count, step_buf_);
  for (std::size_t k = 0; k < count; ++k) results[k] = unpack(step_buf_[k]);
}

}  // namespace vosim
