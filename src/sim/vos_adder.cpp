#include "src/sim/vos_adder.hpp"

#include <algorithm>

#include "src/sim/logic.hpp"
#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"

namespace vosim {

namespace {

/// Position of `net` within the primary-input order.
std::size_t pi_slot(const Netlist& nl, NetId net) {
  const auto pis = nl.primary_inputs();
  const auto it = std::find(pis.begin(), pis.end(), net);
  VOSIM_EXPECTS(it != pis.end());
  return static_cast<std::size_t>(it - pis.begin());
}

}  // namespace

VosAdderSim::VosAdderSim(const AdderNetlist& adder, const CellLibrary& lib,
                         const OperatingTriad& op,
                         const TimingSimConfig& config)
    : adder_(adder), sim_(adder.netlist, lib, op, config) {
  input_buf_.assign(adder_.netlist.primary_inputs().size(), 0);
  a_slot_.reserve(adder_.a.size());
  b_slot_.reserve(adder_.b.size());
  for (const NetId n : adder_.a) a_slot_.push_back(pi_slot(adder_.netlist, n));
  for (const NetId n : adder_.b) b_slot_.push_back(pi_slot(adder_.netlist, n));
  // A carry-in pin, if present, is held at zero (the paper's operators
  // are plain two-operand adders).
  reset(0, 0);
}

void VosAdderSim::fill_inputs(std::uint64_t a, std::uint64_t b) {
  VOSIM_EXPECTS((a & ~mask_n(adder_.width)) == 0);
  VOSIM_EXPECTS((b & ~mask_n(adder_.width)) == 0);
  for (std::size_t i = 0; i < a_slot_.size(); ++i)
    input_buf_[a_slot_[i]] =
        static_cast<std::uint8_t>((a >> i) & 1ULL);
  for (std::size_t i = 0; i < b_slot_.size(); ++i)
    input_buf_[b_slot_[i]] =
        static_cast<std::uint8_t>((b >> i) & 1ULL);
}

void VosAdderSim::reset(std::uint64_t a, std::uint64_t b) {
  fill_inputs(a, b);
  sim_.settle(input_buf_);
}

VosAddResult VosAdderSim::add(std::uint64_t a, std::uint64_t b) {
  fill_inputs(a, b);
  const StepResult st = sim_.step(input_buf_);

  VosAddResult out;
  out.sampled = pack_word(sim_.sampled_values(), adder_.sum);
  // After run_events the simulator values are fully settled.
  for (std::size_t i = 0; i < adder_.sum.size(); ++i)
    if (sim_.value(adder_.sum[i])) out.settled |= (1ULL << i);
  out.energy_fj = st.window_energy_fj + sim_.leakage_energy_fj_per_op();
  out.settle_time_ps = st.settle_time_ps;
  return out;
}

}  // namespace vosim
