// VCD (Value Change Dump) waveform export — for inspecting how timing
// errors form in a waveform viewer (GTKWave etc.). Traces come from a
// TraceRecorder / VcdObserver (src/obs/probe.hpp) attached to an event
// engine.
//
// write_vcd dumps one combinational step(); VcdWriter generalizes to
// multi-cycle (pipelined) runs: several net scopes (one per pipeline
// stage), multi-bit register-bank words latched at each cycle start,
// per-cycle timestamps on one continuous time axis (cycle c spans
// [c·Tclk, (c+1)·Tclk)) and a clk marker pulsing at every capture edge.
#ifndef VOSIM_SIM_VCD_HPP
#define VOSIM_SIM_VCD_HPP

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "src/netlist/netlist.hpp"
#include "src/sim/sim_engine.hpp"

namespace vosim {

/// Writes one recorded step as a VCD file: all of `netlist`'s nets are
/// declared, `initial` (one value per net, the pre-step baseline) is
/// dumped at #0 and every transition in `events` follows with 1 ps
/// resolution. A `clk_sample` marker pulses at `tclk_ps` so the capture
/// edge is visible. Throws ContractViolation when `initial` is empty
/// (i.e. no baseline was recorded).
void write_vcd(const Netlist& netlist, double tclk_ps,
               std::span<const std::uint8_t> initial,
               std::span<const TraceEvent> events, std::ostream& os);

/// Multi-cycle, multi-scope VCD assembly. Usage: declare scopes (net
/// groups from a netlist) and words (register banks), then begin() with
/// the cycle-0 baseline values, append_cycle() per clock with that
/// cycle's committed transitions (times relative to the cycle start)
/// and the bank words latched at its launch edge, and write().
class VcdWriter {
 public:
  /// `tclk_ps` spaces the cycles on the time axis.
  explicit VcdWriter(double tclk_ps);

  /// Declares one scope of single-bit vars named after the netlist's
  /// nets. All scopes must be declared before begin(). Returns the
  /// scope index append_cycle events are keyed by.
  std::size_t add_scope(std::string name, const Netlist& netlist);

  /// Declares a multi-bit word variable (e.g. a register bank); emitted
  /// at every cycle start. Returns the word index.
  std::size_t add_word(std::string name, int bits);

  /// Sets the #0 baseline: one value vector per declared scope.
  void begin(std::vector<std::vector<std::uint8_t>> scope_initial);

  /// Appends one cycle: scope_events[s] are scope s's transitions with
  /// times relative to this cycle's launch edge; words[w] is word w's
  /// value latched at the launch edge. Taken by value — callers that
  /// own their traces can move them in and avoid holding the dump
  /// twice.
  void append_cycle(std::vector<std::vector<TraceEvent>> scope_events,
                    std::vector<std::uint64_t> words);

  std::size_t cycles() const noexcept { return cycles_.size(); }

  /// Emits the whole dump. Requires begin() and >= 1 cycle.
  void write(std::ostream& os) const;

 private:
  struct Scope {
    std::string name;
    const Netlist* netlist;
    std::size_t id_offset;  ///< first VCD identifier index of its nets
  };
  struct Word {
    std::string name;
    int bits;
    std::size_t id;
  };
  struct Cycle {
    std::vector<std::vector<TraceEvent>> scope_events;
    std::vector<std::uint64_t> words;
  };

  double tclk_ps_;
  std::size_t next_id_ = 0;
  std::vector<Scope> scopes_;
  std::vector<Word> words_;
  std::vector<std::vector<std::uint8_t>> initial_;
  std::vector<Cycle> cycles_;
  bool begun_ = false;
};

}  // namespace vosim

#endif  // VOSIM_SIM_VCD_HPP
