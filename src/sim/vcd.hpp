// VCD (Value Change Dump) waveform export of one simulated operation —
// for inspecting how timing errors form in a waveform viewer (GTKWave
// etc.). Requires the simulator to run with record_trace enabled.
#ifndef VOSIM_SIM_VCD_HPP
#define VOSIM_SIM_VCD_HPP

#include <iosfwd>

#include "src/sim/event_sim.hpp"

namespace vosim {

/// Writes the last step() of `sim` as a VCD file: all nets are declared,
/// the pre-step values are dumped at #0 and every committed transition
/// follows with 1 ps resolution. A `clk_sample` marker pulses at Tclk so
/// the capture edge is visible. Throws ContractViolation when tracing
/// was not enabled.
void write_vcd(const TimingSimulator& sim, std::ostream& os);

}  // namespace vosim

#endif  // VOSIM_SIM_VCD_HPP
