// High-level word interface over a timing-simulation engine: "an adder
// operated at a voltage-over-scaled triad" (paper Fig. 2). The backend
// (event-driven reference or bit-parallel levelized) is chosen by
// TimingSimConfig::engine.
#ifndef VOSIM_SIM_VOS_ADDER_HPP
#define VOSIM_SIM_VOS_ADDER_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/netlist/adders.hpp"
#include "src/sim/sim_engine.hpp"

namespace vosim {

/// Result of one voltage-over-scaled addition.
struct VosAddResult {
  /// The (width+1)-bit value captured at the clock edge — possibly wrong.
  std::uint64_t sampled = 0;
  /// The (width+1)-bit value the circuit settles to — the functional
  /// result of this netlist (equals a+b only for exact architectures).
  std::uint64_t settled = 0;
  /// Dynamic + leakage energy of the operation (fJ).
  double energy_fj = 0.0;
  /// Arrival of the last transition (ps).
  double settle_time_ps = 0.0;
};

/// Streams additions through an adder netlist at a fixed operating triad.
/// Circuit state persists between add() calls, like a datapath between
/// pipeline registers; reset() re-settles to a known input pair.
class VosAdderSim {
 public:
  /// The adder must outlive the simulator. `config.engine` selects the
  /// backend (event-driven by default).
  VosAdderSim(const AdderNetlist& adder, const CellLibrary& lib,
              const OperatingTriad& op, const TimingSimConfig& config = {});

  /// Settles the circuit on (a, b) with no timing effects.
  void reset(std::uint64_t a = 0, std::uint64_t b = 0);

  /// Performs one clocked addition. Operands must fit in width bits.
  VosAddResult add(std::uint64_t a, std::uint64_t b);

  /// Streams `a.size()` clocked additions (a[i], b[i]) with the same
  /// state semantics as consecutive add() calls, filling results[i].
  /// The levelized backend evaluates these 64 patterns per pass, which
  /// is where its order-of-magnitude sweep speedup comes from.
  void add_batch(std::span<const std::uint64_t> a,
                 std::span<const std::uint64_t> b,
                 std::span<VosAddResult> results);

  int width() const noexcept { return adder_.width; }
  const AdderNetlist& adder() const noexcept { return adder_; }
  const OperatingTriad& triad() const noexcept { return sim_->triad(); }
  /// Leakage energy charged to every operation at this triad (fJ).
  double leakage_energy_fj() const noexcept {
    return sim_->leakage_energy_fj_per_op();
  }
  /// Backend this simulator runs on.
  EngineKind engine_kind() const noexcept { return sim_->kind(); }
  /// The underlying engine (e.g. for net-level inspection).
  const SimEngine& engine() const noexcept { return *sim_; }

 private:
  VosAddResult unpack(const StepResult& st) const;

  const AdderNetlist& adder_;
  AdderPinMap pins_;
  std::unique_ptr<SimEngine> sim_;
  std::vector<std::uint8_t> input_buf_;
  std::vector<std::uint8_t> batch_buf_;  // batched input vectors
  std::vector<StepResult> step_buf_;     // batched step results
};

}  // namespace vosim

#endif  // VOSIM_SIM_VOS_ADDER_HPP
