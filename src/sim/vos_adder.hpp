// Deprecated adder-specific adapter, kept as a thin shim so pre-DUT
// call sites keep compiling. New code builds a DutNetlist
// (src/netlist/dut.hpp) and drives it with VosDutSim
// (src/sim/vos_dut.hpp); `add` is spelled `apply` there.
#ifndef VOSIM_SIM_VOS_ADDER_HPP
#define VOSIM_SIM_VOS_ADDER_HPP

#include <cstdint>
#include <span>

#include "src/netlist/adders.hpp"
#include "src/netlist/dut.hpp"
#include "src/sim/vos_dut.hpp"

namespace vosim {

/// Result of one voltage-over-scaled addition (alias of the generic
/// operation result; the sampled/settled words are (width+1) bits).
using VosAddResult = VosOpResult;

namespace detail {
/// Base-class holder so a deprecated shim can own the DutNetlist its
/// VosDutSim base references (the base subobject is constructed first).
struct DutHolder {
  DutNetlist dut;
};
}  // namespace detail

/// Streams additions through an adder netlist at a fixed operating
/// triad. Deprecated: a copy-converting wrapper over VosDutSim.
class [[deprecated("use VosDutSim over to_dut(adder)")]] VosAdderSim
    : private detail::DutHolder,
      public VosDutSim {
 public:
  VosAdderSim(const AdderNetlist& adder, const CellLibrary& lib,
              const OperatingTriad& op, const TimingSimConfig& config = {})
      : detail::DutHolder{to_dut(adder)},
        VosDutSim(detail::DutHolder::dut, lib, op, config) {}

  // Not movable: the VosDutSim base references the DutHolder base of
  // this same object, so a move would dangle into the moved-from shim.
  VosAdderSim(VosAdderSim&&) = delete;
  VosAdderSim& operator=(VosAdderSim&&) = delete;

  /// Performs one clocked addition. Operands must fit in width bits.
  VosAddResult add(std::uint64_t a, std::uint64_t b) {
    return apply(a, b);
  }

  /// Streams `a.size()` clocked additions (a[i], b[i]).
  void add_batch(std::span<const std::uint64_t> a,
                 std::span<const std::uint64_t> b,
                 std::span<VosAddResult> results) {
    apply_batch(a, b, results);
  }

  int width() const { return operand_width(0); }
  const AdderNetlist& adder() const = delete;  // the DUT owns a copy
};

}  // namespace vosim

#endif  // VOSIM_SIM_VOS_ADDER_HPP
