#include "src/sim/event_sim.hpp"

#include <algorithm>
#include <cmath>

#include "src/netlist/eval.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/probe.hpp"
#include "src/sim/logic.hpp"
#include "src/tech/gate_timing.hpp"
#include "src/util/contracts.hpp"
#include "src/util/rng.hpp"

namespace vosim {

namespace {
constexpr std::uint64_t no_pending = 0;  // gate_serial_ sentinel
}  // namespace

TimingSimulator::TimingSimulator(const Netlist& netlist,
                                 const CellLibrary& lib,
                                 const OperatingTriad& op,
                                 const TimingSimConfig& config)
    : netlist_(netlist), op_(op) {
  VOSIM_EXPECTS(netlist.finalized());
  VOSIM_EXPECTS(op.tclk_ns > 0.0);
  VOSIM_EXPECTS(config.variation_sigma >= 0.0);
  VOSIM_EXPECTS(config.delay_scale > 0.0);
  VOSIM_EXPECTS(config.leakage_scale > 0.0);
  tclk_ps_ = op.tclk_ns * 1e3;

  const std::vector<double> loads = netlist.compute_net_loads(lib);
  const TransistorModel& tm = lib.transistor_model();

  gate_delay_ps_.resize(netlist.num_gates());
  Rng vrng(config.variation_seed);
  for (GateId gid = 0; gid < netlist.num_gates(); ++gid) {
    const Gate& g = netlist.gate(gid);
    double d = gate_delay_ps(lib.cell(g.kind), loads[g.out], tm, op_) *
               config.delay_scale;
    if (config.variation_sigma > 0.0) {
      // One log-normal sample per gate: a fixed "die", reused for every
      // operation and (by construction order) every triad.
      d *= std::exp(config.variation_sigma * vrng.gaussian());
    }
    gate_delay_ps_[gid] = d;
  }

  net_energy_fj_.resize(netlist.num_nets());
  for (NetId n = 0; n < netlist.num_nets(); ++n)
    net_energy_fj_[n] = toggle_energy_fj(loads[n], op_.vdd_v);

  double leak_nw = netlist.cell_leakage_nw(lib);
  leak_nw *= tm.leakage_scale(op_.vdd_v, op_.vbb_v);
  leak_nw *= config.leakage_scale;
  leakage_energy_fj_ = leak_nw * 1e-3 * tclk_ps_ * 1e-3;  // nW·ps → fJ

  values_.assign(netlist.num_nets(), 0);
  sampled_values_.assign(netlist.num_nets(), 0);
  gate_serial_.assign(netlist.num_gates(), no_pending);
  gate_target_.assign(netlist.num_gates(), 0);

  // Establish a consistent all-zero-input state.
  std::vector<std::uint8_t> zeros(netlist.primary_inputs().size(), 0);
  settle(zeros);
}

void TimingSimulator::settle(std::span<const std::uint8_t> inputs) {
  values_ = evaluate_logic(netlist_, inputs);
  sampled_values_ = values_;
  while (!queue_.empty()) queue_.pop();
  std::fill(gate_serial_.begin(), gate_serial_.end(), no_pending);
  for (GateId gid = 0; gid < netlist_.num_gates(); ++gid)
    gate_target_[gid] = values_[netlist_.gate(gid).out];
}

void TimingSimulator::commit(NetId net, std::uint8_t value, double time_ps) {
  values_[net] = value;
  ++current_.toggles_total;
  current_.total_energy_fj += net_energy_fj_[net];
  if (time_ps < tclk_ps_) {
    ++current_.toggles_in_window;
    current_.window_energy_fj += net_energy_fj_[net];
  }
  current_.settle_time_ps = std::max(current_.settle_time_ps, time_ps);
  if (!observers_.empty())
    for (SimObserver* o : observers_)
      o->on_transition(*this, TraceEvent{time_ps, net, value});
}

void TimingSimulator::enqueue_fanout(NetId net, double now_ps) {
  for (const GateId gid : netlist_.fanout(net)) {
    const Gate& g = netlist_.gate(gid);
    unsigned idx = 0;
    for (std::uint8_t i = 0; i < g.num_inputs; ++i)
      idx |= static_cast<unsigned>(values_[g.in[i]] & 1u) << i;
    const auto newval =
        static_cast<std::uint8_t>((cell_truth(g.kind) >> idx) & 1u);

    const bool pending = gate_serial_[gid] != no_pending;
    const std::uint8_t target = pending ? gate_target_[gid] : values_[g.out];
    if (newval == target) continue;  // stable or already heading there

    if (pending && newval == values_[g.out]) {
      // Inertial cancellation: the input pulse is shorter than the gate
      // delay, so the scheduled output transition is swallowed.
      gate_serial_[gid] = no_pending;
      gate_target_[gid] = values_[g.out];
      continue;
    }
    const std::uint64_t serial = next_serial_++;
    gate_serial_[gid] = serial;
    gate_target_[gid] = newval;
    queue_.push(Event{now_ps + gate_delay_ps_[gid], gid, serial, newval});
  }
}

void TimingSimulator::run_events(double until_ps) {
  while (!queue_.empty() && queue_.top().time_ps < until_ps) {
    const Event e = queue_.top();
    queue_.pop();
    if (e.serial != gate_serial_[e.gate]) continue;  // superseded
    gate_serial_[e.gate] = no_pending;
    if (!sample_taken_ && e.time_ps >= tclk_ps_) {
      sampled_values_ = values_;  // register capture at the clock edge
      sample_taken_ = true;
    }
    const NetId out = netlist_.gate(e.gate).out;
    VOSIM_ENSURES(e.value != values_[out]);
    commit(out, e.value, e.time_ps);
    if (!observers_.empty() && e.time_ps >= tclk_ps_)
      for (SimObserver* o : observers_)
        o->on_late_arrival(*this, out, e.time_ps, e.time_ps - tclk_ps_);
    enqueue_fanout(out, e.time_ps);
  }
}

void TimingSimulator::launch_inputs(std::span<const std::uint8_t> inputs) {
  const auto pis = netlist_.primary_inputs();
  VOSIM_EXPECTS(inputs.size() == pis.size());
  current_ = StepResult{};
  sample_taken_ = false;
  if (!observers_.empty())
    for (SimObserver* o : observers_) o->on_step_begin(*this, values_);
  // Launch edge: primary inputs switch at t = 0.
  for (std::size_t i = 0; i < pis.size(); ++i) {
    const auto v = static_cast<std::uint8_t>(inputs[i] ? 1 : 0);
    if (values_[pis[i]] != v) commit(pis[i], v, 0.0);
  }
  for (std::size_t i = 0; i < pis.size(); ++i) enqueue_fanout(pis[i], 0.0);
}

StepResult TimingSimulator::step(std::span<const std::uint8_t> inputs) {
  static obs::Counter& step_counter =
      obs::metrics().counter("sim.event.steps");
  step_counter.add();
  launch_inputs(inputs);
  run_events();
  if (!sample_taken_) {
    sampled_values_ = values_;  // settled before the capture edge
    sample_taken_ = true;
  }

  current_.sampled_outputs =
      pack_word(sampled_values_, netlist_.primary_outputs());
  current_.settled_outputs = pack_word(values_, netlist_.primary_outputs());
  if (!observers_.empty())
    for (SimObserver* o : observers_)
      o->on_step_end(*this, sampled_values_, values_, current_);
  return current_;
}

StepResult TimingSimulator::step_cycle(std::span<const std::uint8_t> inputs) {
  static obs::Counter& cycle_counter =
      obs::metrics().counter("sim.event.steps");
  cycle_counter.add();
  launch_inputs(inputs);

  // Process events strictly before the capture edge; later events stay
  // in flight. The commit() window test (time < Tclk) holds for every
  // event processed here, so the whole cycle's switching is charged to
  // this cycle's window energy — including arrivals launched in earlier
  // cycles. (run_events' capture branch never fires under this bound.)
  run_events(tclk_ps_);

  // Register capture at the edge: whatever the nets hold right now.
  sampled_values_ = values_;
  sample_taken_ = true;
  current_.sampled_outputs =
      pack_word(sampled_values_, netlist_.primary_outputs());
  // Razor shadow reference: the zero-delay functional result for these
  // inputs (computed on the side; the event state stays mid-flight).
  const std::vector<std::uint8_t> functional =
      evaluate_logic(netlist_, inputs);
  current_.settled_outputs =
      pack_word(functional, netlist_.primary_outputs());
  current_.total_energy_fj = current_.window_energy_fj;
  current_.toggles_total = current_.toggles_in_window;

  // Rebase the surviving in-flight events onto the next cycle's time
  // axis (their times are >= Tclk, so they stay non-negative). Live
  // events here are exactly the transitions that missed the edge —
  // reported as late arrivals before the rebase moves their clock.
  if (!queue_.empty()) {
    std::vector<Event> carried;
    carried.reserve(queue_.size());
    while (!queue_.empty()) {
      Event e = queue_.top();
      queue_.pop();
      if (!observers_.empty() && e.serial == gate_serial_[e.gate])
        for (SimObserver* o : observers_)
          o->on_late_arrival(*this, netlist_.gate(e.gate).out, e.time_ps,
                             e.time_ps - tclk_ps_);
      e.time_ps -= tclk_ps_;
      carried.push_back(e);
    }
    for (const Event& e : carried) queue_.push(e);
  }
  if (!observers_.empty())
    for (SimObserver* o : observers_)
      o->on_step_end(*this, sampled_values_, functional, current_);
  return current_;
}

}  // namespace vosim
