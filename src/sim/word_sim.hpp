// Deprecated ad-hoc word-level interface, kept as a thin shim. Its job
// — driving an arbitrary netlist through operand buses — is what the
// DutNetlist abstraction does properly now: wrap the netlist with
// make_dut()/to_dut() (src/netlist/dut.hpp) and drive it with
// VosDutSim (src/sim/vos_dut.hpp). Bus-width contracts (including
// 2·width-bit product buses up to 64 bits) are enforced by DutPinMap.
#ifndef VOSIM_SIM_WORD_SIM_HPP
#define VOSIM_SIM_WORD_SIM_HPP

#include <cstdint>
#include <vector>

#include "src/netlist/dut.hpp"
#include "src/sim/vos_adder.hpp"
#include "src/sim/vos_dut.hpp"

namespace vosim {

/// Result of one clocked word operation (alias of the generic result).
using WordOpResult = VosOpResult;

/// Streams operand words through an arbitrary combinational netlist at
/// a fixed operating triad. Deprecated: a copy-converting wrapper over
/// VosDutSim.
class [[deprecated("wrap the netlist with make_dut() and use VosDutSim")]]
VosWordSim : private detail::DutHolder,
             public VosDutSim {
 public:
  VosWordSim(const Netlist& netlist, const CellLibrary& lib,
             const OperatingTriad& op,
             std::vector<std::vector<NetId>> input_buses,
             std::vector<NetId> output_bus,
             const TimingSimConfig& config = {})
      : detail::DutHolder{make_dut(netlist, std::move(input_buses),
                                   std::move(output_bus))},
        VosDutSim(detail::DutHolder::dut, lib, op, config) {}

  // Not movable: the VosDutSim base references the DutHolder base of
  // this same object, so a move would dangle into the moved-from shim.
  VosWordSim(VosWordSim&&) = delete;
  VosWordSim& operator=(VosWordSim&&) = delete;

  /// Settles the circuit on the given operand words.
  void reset(const std::vector<std::uint64_t>& operands) {
    VosDutSim::reset(
        std::span<const std::uint64_t>(operands.data(), operands.size()));
  }

  /// One clocked operation; operands must fit their bus widths.
  WordOpResult apply(const std::vector<std::uint64_t>& operands) {
    return VosDutSim::apply(
        std::span<const std::uint64_t>(operands.data(), operands.size()));
  }
};

}  // namespace vosim

#endif  // VOSIM_SIM_WORD_SIM_HPP
