// Generic word-level interface over the timing simulator: any netlist
// whose primary inputs form operand buses and whose interesting result
// is a bus of nets. Used to extend VOS characterization beyond adders
// (e.g. the array multiplier), per the paper's Section IV claim that the
// methodology is "compliant with different arithmetic configurations".
#ifndef VOSIM_SIM_WORD_SIM_HPP
#define VOSIM_SIM_WORD_SIM_HPP

#include <cstdint>
#include <vector>

#include "src/sim/event_sim.hpp"

namespace vosim {

/// Result of one clocked word operation.
struct WordOpResult {
  std::uint64_t sampled = 0;  ///< output bus at the clock edge
  std::uint64_t settled = 0;  ///< output bus after full settling
  double energy_fj = 0.0;     ///< window dynamic + leakage
  double settle_time_ps = 0.0;
};

/// Streams operand words through an arbitrary combinational netlist at a
/// fixed operating triad. Operand buses are given as LSB-first net lists;
/// unlisted primary inputs are held at zero. Operand buses are limited
/// to max_word_bits and the output bus to max_word_bits + 1 (the exact
/// (n+1)-bit sum), per DESIGN.md §6.1.
class VosWordSim {
 public:
  VosWordSim(const Netlist& netlist, const CellLibrary& lib,
             const OperatingTriad& op,
             std::vector<std::vector<NetId>> input_buses,
             std::vector<NetId> output_bus,
             const TimingSimConfig& config = {});

  /// Settles the circuit on the given operand words (no timing effects).
  void reset(const std::vector<std::uint64_t>& operands);

  /// One clocked operation; operands must fit their bus widths.
  WordOpResult apply(const std::vector<std::uint64_t>& operands);

  std::size_t num_operands() const noexcept { return input_slots_.size(); }
  int operand_width(std::size_t i) const {
    return static_cast<int>(input_slots_.at(i).size());
  }
  int output_width() const noexcept {
    return static_cast<int>(output_bus_.size());
  }
  double leakage_energy_fj() const noexcept {
    return sim_.leakage_energy_fj_per_op();
  }
  const OperatingTriad& triad() const noexcept { return sim_.triad(); }

 private:
  void fill_inputs(const std::vector<std::uint64_t>& operands);

  TimingSimulator sim_;
  std::vector<std::vector<std::size_t>> input_slots_;  // PI positions
  std::vector<NetId> output_bus_;
  std::vector<std::uint8_t> input_buf_;
};

}  // namespace vosim

#endif  // VOSIM_SIM_WORD_SIM_HPP
