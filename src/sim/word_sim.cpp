#include "src/sim/word_sim.hpp"

#include <algorithm>

#include "src/sim/logic.hpp"
#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"

namespace vosim {

VosWordSim::VosWordSim(const Netlist& netlist, const CellLibrary& lib,
                       const OperatingTriad& op,
                       std::vector<std::vector<NetId>> input_buses,
                       std::vector<NetId> output_bus,
                       const TimingSimConfig& config)
    : sim_(netlist, lib, op, config), output_bus_(std::move(output_bus)) {
  // Operand buses are capped at max_word_bits (not 64) so the
  // word-arithmetic layer's contracts hold throughout; the output bus
  // may be one bit wider — the (n+1)-bit exact-sum case — which still
  // fits a std::uint64_t.
  VOSIM_EXPECTS(!input_buses.empty());
  VOSIM_EXPECTS(!output_bus_.empty() &&
                output_bus_.size() <=
                    static_cast<std::size_t>(max_word_bits) + 1);
  const auto pis = netlist.primary_inputs();
  input_buf_.assign(pis.size(), 0);
  for (const auto& bus : input_buses) {
    VOSIM_EXPECTS(!bus.empty() &&
                  bus.size() <= static_cast<std::size_t>(max_word_bits));
    std::vector<std::size_t> slots;
    slots.reserve(bus.size());
    for (const NetId net : bus) {
      const auto it = std::find(pis.begin(), pis.end(), net);
      VOSIM_EXPECTS(it != pis.end());
      slots.push_back(static_cast<std::size_t>(it - pis.begin()));
    }
    input_slots_.push_back(std::move(slots));
  }
}

void VosWordSim::fill_inputs(const std::vector<std::uint64_t>& operands) {
  VOSIM_EXPECTS(operands.size() == input_slots_.size());
  for (std::size_t k = 0; k < operands.size(); ++k) {
    const auto& slots = input_slots_[k];
    VOSIM_EXPECTS((operands[k] &
                   ~mask_n(static_cast<int>(slots.size()))) == 0);
    for (std::size_t i = 0; i < slots.size(); ++i)
      input_buf_[slots[i]] =
          static_cast<std::uint8_t>((operands[k] >> i) & 1ULL);
  }
}

void VosWordSim::reset(const std::vector<std::uint64_t>& operands) {
  fill_inputs(operands);
  sim_.settle(input_buf_);
}

WordOpResult VosWordSim::apply(const std::vector<std::uint64_t>& operands) {
  fill_inputs(operands);
  const StepResult st = sim_.step(input_buf_);
  WordOpResult out;
  out.sampled = pack_word(sim_.sampled_values(), output_bus_);
  for (std::size_t i = 0; i < output_bus_.size(); ++i)
    if (sim_.value(output_bus_[i])) out.settled |= (1ULL << i);
  out.energy_fj = st.window_energy_fj + sim_.leakage_energy_fj_per_op();
  out.settle_time_ps = st.settle_time_ps;
  return out;
}

}  // namespace vosim
