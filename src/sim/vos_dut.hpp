// High-level word interface over a timing-simulation engine: "a datapath
// operator run at a voltage-over-scaled triad" (paper Fig. 2),
// generalized from adders to any DutNetlist — multipliers, adder trees,
// MAC trees. The backend (event-driven reference or bit-parallel
// levelized) is chosen by TimingSimConfig::engine.
#ifndef VOSIM_SIM_VOS_DUT_HPP
#define VOSIM_SIM_VOS_DUT_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/netlist/dut.hpp"
#include "src/sim/sim_engine.hpp"

namespace vosim {

/// Result of one voltage-over-scaled clocked operation.
struct VosOpResult {
  /// The output-bus value captured at the clock edge — possibly wrong.
  std::uint64_t sampled = 0;
  /// The value the circuit settles to — the functional result of this
  /// netlist (equals the exact arithmetic result only for exact
  /// architectures).
  std::uint64_t settled = 0;
  /// Dynamic + leakage energy of the operation (fJ).
  double energy_fj = 0.0;
  /// Arrival of the last transition (ps).
  double settle_time_ps = 0.0;
};

/// Streams word operations through a DUT netlist at a fixed operating
/// triad. Circuit state persists between apply() calls, like a datapath
/// between pipeline registers; reset() re-settles to known operands.
/// Primary inputs outside the operand buses (e.g. a carry-in) are held
/// at logic zero.
class VosDutSim {
 public:
  /// The DUT must outlive the simulator. `config.engine` selects the
  /// backend (event-driven by default).
  VosDutSim(const DutNetlist& dut, const CellLibrary& lib,
            const OperatingTriad& op, const TimingSimConfig& config = {});

  /// Settles the circuit on the given operands with no timing effects;
  /// the no-argument form settles on all-zero operands.
  void reset(std::span<const std::uint64_t> operands);
  void reset();
  /// Two-operand convenience (adders, multipliers).
  void reset(std::uint64_t a, std::uint64_t b);

  /// Performs one clocked operation. operands.size() must equal
  /// num_operands() and operand k must fit in operand_width(k) bits.
  VosOpResult apply(std::span<const std::uint64_t> operands);
  /// Two-operand convenience.
  VosOpResult apply(std::uint64_t a, std::uint64_t b);

  /// Streams `count` clocked operations with the same state semantics
  /// as consecutive apply() calls, filling results[k]. Operation k's
  /// operands live in operands[k*num_operands(), (k+1)*num_operands()).
  /// The levelized backend evaluates 64 patterns per pass here, which
  /// is where its order-of-magnitude sweep speedup comes from.
  void apply_batch(std::span<const std::uint64_t> operands,
                   std::size_t count, std::span<VosOpResult> results);
  /// Two-operand convenience: operation k applies (a[k], b[k]).
  void apply_batch(std::span<const std::uint64_t> a,
                   std::span<const std::uint64_t> b,
                   std::span<VosOpResult> results);

  const DutNetlist& dut() const noexcept { return dut_; }
  const DutPinMap& pins() const noexcept { return pins_; }
  std::size_t num_operands() const noexcept { return pins_.num_operands(); }
  int operand_width(std::size_t i) const { return pins_.operand_width(i); }
  int output_width() const noexcept { return pins_.output_width(); }
  const OperatingTriad& triad() const noexcept { return sim_->triad(); }
  /// Leakage energy charged to every operation at this triad (fJ).
  double leakage_energy_fj() const noexcept {
    return sim_->leakage_energy_fj_per_op();
  }
  /// Backend this simulator runs on.
  EngineKind engine_kind() const noexcept { return sim_->kind(); }
  /// The underlying engine (e.g. for net-level inspection).
  const SimEngine& engine() const noexcept { return *sim_; }
  /// Mutable access — for attaching SimObservers (src/obs/probe.hpp).
  SimEngine& engine() noexcept { return *sim_; }

 private:
  VosOpResult unpack(const StepResult& st) const;

  const DutNetlist& dut_;
  DutPinMap pins_;
  std::unique_ptr<SimEngine> sim_;
  std::vector<std::uint64_t> op_buf_;    // convenience-overload operands
  std::vector<std::uint64_t> flat_buf_;  // two-operand batch interleave
  std::vector<std::uint8_t> input_buf_;
  std::vector<std::uint8_t> batch_buf_;  // batched input vectors
  std::vector<StepResult> step_buf_;     // batched step results
};

}  // namespace vosim

#endif  // VOSIM_SIM_VOS_DUT_HPP
