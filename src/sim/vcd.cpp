#include "src/sim/vcd.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <string>
#include <vector>

#include "src/util/contracts.hpp"

namespace vosim {

namespace {

/// VCD identifier for a net: printable-ASCII base-94 code.
std::string vcd_id(NetId net) {
  std::string id;
  std::uint32_t v = net;
  do {
    id.push_back(static_cast<char>('!' + (v % 94)));
    v /= 94;
  } while (v != 0);
  return id;
}

constexpr const char* clk_id = "~~";  // reserved marker identifier

}  // namespace

void write_vcd(const TimingSimulator& sim, std::ostream& os) {
  const auto initial = sim.trace_initial_values();
  VOSIM_EXPECTS(!initial.empty());
  const Netlist& nl = sim.netlist();

  os << "$timescale 1ps $end\n";
  os << "$scope module " << nl.name() << " $end\n";
  for (NetId n = 0; n < nl.num_nets(); ++n)
    os << "$var wire 1 " << vcd_id(n) << " " << nl.net_name(n) << " $end\n";
  os << "$var wire 1 " << clk_id << " clk_sample $end\n";
  os << "$upscope $end\n$enddefinitions $end\n";

  os << "#0\n$dumpvars\n";
  for (NetId n = 0; n < nl.num_nets(); ++n)
    os << static_cast<int>(initial[n]) << vcd_id(n) << "\n";
  os << "0" << clk_id << "\n$end\n";

  // Merge the transition trace with the sampling-edge marker.
  const double tclk_ps = sim.triad().tclk_ns * 1e3;
  std::vector<TraceEvent> events(sim.trace().begin(), sim.trace().end());
  bool clk_emitted = false;
  long last_time = -1;
  auto emit_time = [&](double t_ps) {
    const long t = std::lround(t_ps);
    if (t != last_time) {
      os << "#" << t << "\n";
      last_time = t;
    }
  };
  for (const TraceEvent& e : events) {
    if (!clk_emitted && e.time_ps >= tclk_ps) {
      emit_time(tclk_ps);
      os << "1" << clk_id << "\n";
      clk_emitted = true;
    }
    emit_time(e.time_ps);
    os << static_cast<int>(e.value) << vcd_id(e.net) << "\n";
  }
  if (!clk_emitted) {
    emit_time(tclk_ps);
    os << "1" << clk_id << "\n";
  }
}

}  // namespace vosim
