#include "src/sim/vcd.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <string>
#include <vector>

#include "src/util/contracts.hpp"

namespace vosim {

namespace {

/// VCD identifier for a net: printable-ASCII base-94 code.
std::string vcd_id(NetId net) {
  std::string id;
  std::uint32_t v = net;
  do {
    id.push_back(static_cast<char>('!' + (v % 94)));
    v /= 94;
  } while (v != 0);
  return id;
}

constexpr const char* clk_id = "~~";  // reserved marker identifier

/// Identifier for VcdWriter vars: a distinct "=" prefix keeps the
/// writer's id space disjoint from clk_id regardless of count.
std::string writer_id(std::size_t index) {
  return "=" + vcd_id(static_cast<NetId>(index));
}

}  // namespace

void write_vcd(const Netlist& netlist, double tclk_ps,
               std::span<const std::uint8_t> initial,
               std::span<const TraceEvent> events, std::ostream& os) {
  VOSIM_EXPECTS(!initial.empty());
  VOSIM_EXPECTS(initial.size() == netlist.num_nets());
  const Netlist& nl = netlist;

  os << "$timescale 1ps $end\n";
  os << "$scope module " << nl.name() << " $end\n";
  for (NetId n = 0; n < nl.num_nets(); ++n)
    os << "$var wire 1 " << vcd_id(n) << " " << nl.net_name(n) << " $end\n";
  os << "$var wire 1 " << clk_id << " clk_sample $end\n";
  os << "$upscope $end\n$enddefinitions $end\n";

  os << "#0\n$dumpvars\n";
  for (NetId n = 0; n < nl.num_nets(); ++n)
    os << static_cast<int>(initial[n]) << vcd_id(n) << "\n";
  os << "0" << clk_id << "\n$end\n";

  // Merge the transition trace with the sampling-edge marker.
  bool clk_emitted = false;
  long last_time = -1;
  auto emit_time = [&](double t_ps) {
    const long t = std::lround(t_ps);
    if (t != last_time) {
      os << "#" << t << "\n";
      last_time = t;
    }
  };
  for (const TraceEvent& e : events) {
    if (!clk_emitted && e.time_ps >= tclk_ps) {
      emit_time(tclk_ps);
      os << "1" << clk_id << "\n";
      clk_emitted = true;
    }
    emit_time(e.time_ps);
    os << static_cast<int>(e.value) << vcd_id(e.net) << "\n";
  }
  if (!clk_emitted) {
    emit_time(tclk_ps);
    os << "1" << clk_id << "\n";
  }
}

VcdWriter::VcdWriter(double tclk_ps) : tclk_ps_(tclk_ps) {
  VOSIM_EXPECTS(tclk_ps > 0.0);
}

std::size_t VcdWriter::add_scope(std::string name, const Netlist& netlist) {
  VOSIM_EXPECTS(!begun_);
  scopes_.push_back(Scope{std::move(name), &netlist, next_id_});
  next_id_ += netlist.num_nets();
  return scopes_.size() - 1;
}

std::size_t VcdWriter::add_word(std::string name, int bits) {
  VOSIM_EXPECTS(!begun_);
  VOSIM_EXPECTS(bits >= 1 && bits <= 64);
  words_.push_back(Word{std::move(name), bits, next_id_});
  ++next_id_;
  return words_.size() - 1;
}

void VcdWriter::begin(std::vector<std::vector<std::uint8_t>> scope_initial) {
  VOSIM_EXPECTS(!begun_);
  VOSIM_EXPECTS(scope_initial.size() == scopes_.size());
  for (std::size_t s = 0; s < scopes_.size(); ++s)
    VOSIM_EXPECTS(scope_initial[s].size() == scopes_[s].netlist->num_nets());
  initial_ = std::move(scope_initial);
  begun_ = true;
}

void VcdWriter::append_cycle(
    std::vector<std::vector<TraceEvent>> scope_events,
    std::vector<std::uint64_t> words) {
  VOSIM_EXPECTS(begun_);
  VOSIM_EXPECTS(scope_events.size() == scopes_.size());
  VOSIM_EXPECTS(words.size() == words_.size());
  cycles_.push_back(Cycle{std::move(scope_events), std::move(words)});
}

void VcdWriter::write(std::ostream& os) const {
  VOSIM_EXPECTS(begun_);
  VOSIM_EXPECTS(!cycles_.empty());

  os << "$timescale 1ps $end\n";
  for (const Scope& scope : scopes_) {
    os << "$scope module " << scope.name << " $end\n";
    for (NetId n = 0; n < scope.netlist->num_nets(); ++n)
      os << "$var wire 1 " << writer_id(scope.id_offset + n) << " "
         << scope.netlist->net_name(n) << " $end\n";
    os << "$upscope $end\n";
  }
  os << "$scope module registers $end\n";
  for (const Word& w : words_)
    os << "$var wire " << w.bits << " " << writer_id(w.id) << " " << w.name
       << " [" << (w.bits - 1) << ":0] $end\n";
  os << "$var wire 1 " << clk_id << " clk $end\n";
  os << "$upscope $end\n$enddefinitions $end\n";

  const auto emit_word = [&os](const Word& w, std::uint64_t value) {
    os << "b";
    for (int bit = w.bits - 1; bit >= 0; --bit)
      os << ((value >> bit) & 1ULL);
    os << " " << writer_id(w.id) << "\n";
  };

  // #0 baseline: net values, cycle-0 bank words, clk low.
  os << "#0\n$dumpvars\n";
  for (std::size_t s = 0; s < scopes_.size(); ++s)
    for (NetId n = 0; n < scopes_[s].netlist->num_nets(); ++n)
      os << static_cast<int>(initial_[s][n])
         << writer_id(scopes_[s].id_offset + n) << "\n";
  for (std::size_t w = 0; w < words_.size(); ++w)
    emit_word(words_[w], cycles_.front().words[w]);
  os << "0" << clk_id << "\n$end\n";

  long last_time = 0;
  const auto emit_time = [&](double t_ps) {
    const long t = std::lround(t_ps);
    if (t != last_time) {
      os << "#" << t << "\n";
      last_time = t;
    }
  };

  std::vector<std::uint64_t> word_now = cycles_.front().words;
  for (std::size_t c = 0; c < cycles_.size(); ++c) {
    const double base = static_cast<double>(c) * tclk_ps_;
    if (c > 0) {
      // Launch edge: the banks latch their new words at the edge.
      emit_time(base);
      for (std::size_t w = 0; w < words_.size(); ++w) {
        if (cycles_[c].words[w] != word_now[w]) {
          word_now[w] = cycles_[c].words[w];
          emit_word(words_[w], word_now[w]);
        }
      }
    }
    // Merge this cycle's per-scope transitions in time order; the clk
    // fall (1 ps after the launch edge, so the capture pulse stays
    // visible) rides along as a sentinel event.
    std::vector<TraceEvent> merged;
    if (c > 0) merged.push_back(TraceEvent{1.0, invalid_net, 0});
    for (std::size_t s = 0; s < scopes_.size(); ++s)
      for (const TraceEvent& e : cycles_[c].scope_events[s])
        merged.push_back(TraceEvent{
            e.time_ps,
            static_cast<NetId>(scopes_[s].id_offset + e.net), e.value});
    std::stable_sort(merged.begin(), merged.end(),
                     [](const TraceEvent& x, const TraceEvent& y) {
                       return x.time_ps < y.time_ps;
                     });
    for (const TraceEvent& e : merged) {
      emit_time(base + e.time_ps);
      if (e.net == invalid_net)
        os << static_cast<int>(e.value) << clk_id << "\n";
      else
        os << static_cast<int>(e.value) << writer_id(e.net) << "\n";
    }
    // Capture edge closes the cycle.
    emit_time(base + tclk_ps_);
    os << "1" << clk_id << "\n";
  }
}

}  // namespace vosim
