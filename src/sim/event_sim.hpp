// Event-driven gate-level timing simulation with inertial delays.
//
// This is the reproduction's stand-in for the paper's transistor-level
// Eldo SPICE runs (Fig. 4): it propagates input transitions through the
// netlist with voltage/body-bias dependent gate delays and samples the
// outputs at the clock period. A bit whose final transition has not
// arrived by Tclk latches a stale or glitch value — exactly the timing
// errors voltage over-scaling provokes.
#ifndef VOSIM_SIM_EVENT_SIM_HPP
#define VOSIM_SIM_EVENT_SIM_HPP

#include <cstdint>
#include <queue>
#include <span>
#include <vector>

#include "src/netlist/netlist.hpp"
#include "src/tech/operating_point.hpp"

namespace vosim {

/// Simulator knobs.
struct TimingSimConfig {
  /// Per-gate log-normal delay variation sigma (0 = deterministic).
  /// Models within-die process variation; one sample is drawn per gate
  /// at construction ("one die") and reused across operations.
  double variation_sigma = 0.0;
  /// Seed for the per-gate variation sample.
  std::uint64_t variation_seed = 1;
  /// Record every committed transition of the next step() for waveform
  /// inspection (see src/sim/vcd.hpp). Off by default: tracing allocates
  /// per event.
  bool record_trace = false;
};

/// One committed transition (for waveform dumps).
struct TraceEvent {
  double time_ps = 0.0;
  NetId net = invalid_net;
  std::uint8_t value = 0;
};

/// Result of simulating one clocked operation (two-vector transition).
struct StepResult {
  /// Values sampled at t = Tclk (what the capture registers see).
  std::uint64_t sampled_outputs = 0;  // packed in primary-output order
  /// Fully settled values (t → ∞), i.e. the functionally correct result.
  std::uint64_t settled_outputs = 0;
  /// Time of the last committed transition (ps).
  double settle_time_ps = 0.0;
  /// Dynamic energy of transitions inside the clock window [0, Tclk) —
  /// in a pipeline, switching after the clock edge belongs to the next
  /// operation, and deep VOS truncates carry activity (DESIGN.md §6.3).
  double window_energy_fj = 0.0;
  /// Dynamic energy of *all* transitions until quiescence (what a
  /// non-pipelined accounting would charge; see the energy-window
  /// ablation bench).
  double total_energy_fj = 0.0;
  /// Transition counts (inside the window / total until settled).
  std::uint32_t toggles_in_window = 0;
  std::uint32_t toggles_total = 0;
};

/// Event-driven simulator bound to one netlist, library and triad.
///
/// Usage: settle() to establish the initial state, then step() per
/// operation. State persists between steps like a real datapath between
/// clock edges (DESIGN.md §6.5).
class TimingSimulator {
 public:
  TimingSimulator(const Netlist& netlist, const CellLibrary& lib,
                  const OperatingTriad& op, const TimingSimConfig& config = {});

  /// Applies input values and lets the circuit settle completely
  /// (no sampling, no energy accounting).
  void settle(std::span<const std::uint8_t> inputs);

  /// Applies a new input vector at t = 0, propagates events, samples at
  /// Tclk and runs to quiescence. Returns packed outputs and energy.
  StepResult step(std::span<const std::uint8_t> inputs);

  /// Per-operation leakage energy at this triad (fJ): leakage power
  /// integrated over one clock period.
  double leakage_energy_fj_per_op() const noexcept {
    return leakage_energy_fj_;
  }

  /// Current value of a net (after the last settle/step).
  bool value(NetId net) const { return values_.at(net) != 0; }

  /// Values sampled at the last step's clock edge, one per net.
  std::span<const std::uint8_t> sampled_values() const noexcept {
    return sampled_values_;
  }

  const OperatingTriad& triad() const noexcept { return op_; }
  const Netlist& netlist() const noexcept { return netlist_; }

  /// Assigned delay of a gate (after variation), ps.
  double gate_delay(GateId gid) const { return gate_delay_ps_.at(gid); }

  /// Transitions of the last step() (only when record_trace is set).
  std::span<const TraceEvent> trace() const noexcept { return trace_; }
  /// Net values at the start of the last step() (trace baseline).
  std::span<const std::uint8_t> trace_initial_values() const noexcept {
    return trace_initial_;
  }

 private:
  struct Event {
    double time_ps;
    GateId gate;
    std::uint64_t serial;  // cancellation token
    std::uint8_t value;
    friend bool operator>(const Event& x, const Event& y) {
      return x.time_ps > y.time_ps;
    }
  };

  void enqueue_fanout(NetId net, double now_ps);
  void commit(NetId net, std::uint8_t value, double time_ps);
  void run_events();

  const Netlist& netlist_;
  OperatingTriad op_;
  double tclk_ps_ = 0.0;
  double leakage_energy_fj_ = 0.0;

  std::vector<double> gate_delay_ps_;   // per gate, incl. variation
  std::vector<double> net_energy_fj_;   // per net, energy of one toggle
  std::vector<std::uint8_t> values_;    // current value per net
  std::vector<std::uint8_t> sampled_values_;
  std::vector<std::uint64_t> gate_serial_;    // latest scheduled serial
  std::vector<std::uint8_t> gate_target_;     // value it is heading to
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::uint64_t next_serial_ = 1;

  // Per-step scratch state.
  bool sample_taken_ = false;
  StepResult current_{};
  bool record_trace_ = false;
  std::vector<TraceEvent> trace_;
  std::vector<std::uint8_t> trace_initial_;
};

}  // namespace vosim

#endif  // VOSIM_SIM_EVENT_SIM_HPP
