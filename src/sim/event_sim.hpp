// Event-driven gate-level timing simulation with inertial delays.
//
// This is the reproduction's stand-in for the paper's transistor-level
// Eldo SPICE runs (Fig. 4): it propagates input transitions through the
// netlist with voltage/body-bias dependent gate delays and samples the
// outputs at the clock period. A bit whose final transition has not
// arrived by Tclk latches a stale or glitch value — exactly the timing
// errors voltage over-scaling provokes.
//
// TimingSimulator is the accuracy-reference backend of the SimEngine
// interface (src/sim/sim_engine.hpp); the bit-parallel levelized backend
// (src/sim/levelized_sim.hpp) trades its glitch/inertial fidelity for an
// order-of-magnitude faster sweep.
#ifndef VOSIM_SIM_EVENT_SIM_HPP
#define VOSIM_SIM_EVENT_SIM_HPP

#include <cstdint>
#include <limits>
#include <queue>
#include <span>
#include <vector>

#include "src/netlist/netlist.hpp"
#include "src/sim/sim_engine.hpp"
#include "src/tech/operating_point.hpp"

namespace vosim {

/// Event-driven simulator bound to one netlist, library and triad.
///
/// Usage: settle() to establish the initial state, then step() per
/// operation. State persists between steps like a real datapath between
/// clock edges (DESIGN.md §6.5).
class TimingSimulator final : public SimEngine {
 public:
  TimingSimulator(const Netlist& netlist, const CellLibrary& lib,
                  const OperatingTriad& op, const TimingSimConfig& config = {});

  /// Applies input values and lets the circuit settle completely
  /// (no sampling, no energy accounting).
  void settle(std::span<const std::uint8_t> inputs);

  // -- SimEngine ---------------------------------------------------------
  EngineKind kind() const noexcept override { return EngineKind::kEvent; }
  const Netlist& netlist() const noexcept override { return netlist_; }
  const OperatingTriad& triad() const noexcept override { return op_; }

  void reset(std::span<const std::uint8_t> inputs) override {
    settle(inputs);
  }

  /// Applies a new input vector at t = 0, propagates events, samples at
  /// Tclk and runs to quiescence. Returns packed outputs and energy.
  StepResult step(std::span<const std::uint8_t> inputs) override;

  /// Clocked step: processes only events inside [0, Tclk). Events still
  /// pending at the edge stay queued (rebased to the next cycle's time
  /// axis) and land in later cycles with their remaining delay — the
  /// still-in-flight transitions of a real pipeline stage.
  /// settled_outputs is the zero-delay functional result; the event
  /// state is not settled. See SimEngine::step_cycle.
  StepResult step_cycle(std::span<const std::uint8_t> inputs) override;

  /// Per-operation leakage energy at this triad (fJ): leakage power
  /// integrated over one clock period.
  double leakage_energy_fj_per_op() const noexcept override {
    return leakage_energy_fj_;
  }

  /// Values sampled at the last step's clock edge, one per net.
  std::span<const std::uint8_t> sampled_values() const noexcept override {
    return sampled_values_;
  }

  /// Fully settled values after the last settle/step, one per net.
  std::span<const std::uint8_t> settled_values() const noexcept override {
    return values_;
  }

  // -- event-engine specifics --------------------------------------------
  /// Current value of a net (after the last settle/step).
  bool value(NetId net) const { return values_.at(net) != 0; }

  /// Assigned delay of a gate (after variation), ps.
  double gate_delay(GateId gid) const { return gate_delay_ps_.at(gid); }

  // Transition traces: attach a TraceRecorder or VcdObserver
  // (src/obs/probe.hpp) — the engine emits every committed transition
  // through SimObserver::on_transition and the step baseline through
  // on_step_begin; the old in-engine record_trace/take_trace plumbing
  // is gone.

 private:
  struct Event {
    double time_ps;
    GateId gate;
    std::uint64_t serial;  // cancellation token
    std::uint8_t value;
    friend bool operator>(const Event& x, const Event& y) {
      return x.time_ps > y.time_ps;
    }
  };

  void enqueue_fanout(NetId net, double now_ps);
  void commit(NetId net, std::uint8_t value, double time_ps);
  /// Resets per-step state and commits the t = 0 input transitions.
  void launch_inputs(std::span<const std::uint8_t> inputs);
  /// Processes queued events with time < until_ps (default: drain).
  void run_events(double until_ps =
                      std::numeric_limits<double>::infinity());

  const Netlist& netlist_;
  OperatingTriad op_;
  double tclk_ps_ = 0.0;
  double leakage_energy_fj_ = 0.0;

  std::vector<double> gate_delay_ps_;   // per gate, incl. variation
  std::vector<double> net_energy_fj_;   // per net, energy of one toggle
  std::vector<std::uint8_t> values_;    // current value per net
  std::vector<std::uint8_t> sampled_values_;
  std::vector<std::uint64_t> gate_serial_;    // latest scheduled serial
  std::vector<std::uint8_t> gate_target_;     // value it is heading to
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::uint64_t next_serial_ = 1;

  // Per-step scratch state.
  bool sample_taken_ = false;
  StepResult current_{};
};

}  // namespace vosim

#endif  // VOSIM_SIM_EVENT_SIM_HPP
