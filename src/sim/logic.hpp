// Compatibility alias: golden evaluation moved to src/netlist/eval.hpp.
#ifndef VOSIM_SIM_LOGIC_HPP
#define VOSIM_SIM_LOGIC_HPP

#include "src/netlist/eval.hpp"

#endif  // VOSIM_SIM_LOGIC_HPP
