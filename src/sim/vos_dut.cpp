#include "src/sim/vos_dut.hpp"

#include <algorithm>

#include "src/util/contracts.hpp"

namespace vosim {

VosDutSim::VosDutSim(const DutNetlist& dut, const CellLibrary& lib,
                     const OperatingTriad& op,
                     const TimingSimConfig& config)
    : dut_(dut),
      pins_(dut),
      sim_(make_engine(dut.netlist, lib, op, config)) {
  op_buf_.assign(pins_.num_operands(), 0);
  input_buf_.assign(dut_.netlist.primary_inputs().size(), 0);
  // Pins outside the operand buses (e.g. a carry-in) stay at zero.
  reset();
}

VosOpResult VosDutSim::unpack(const StepResult& st) const {
  VosOpResult out;
  out.sampled = pins_.gather_output(st.sampled_outputs);
  out.settled = pins_.gather_output(st.settled_outputs);
  out.energy_fj = st.window_energy_fj + sim_->leakage_energy_fj_per_op();
  out.settle_time_ps = st.settle_time_ps;
  return out;
}

void VosDutSim::reset(std::span<const std::uint64_t> operands) {
  pins_.fill_inputs(operands, input_buf_.data());
  sim_->reset(input_buf_);
}

void VosDutSim::reset() {
  std::fill(op_buf_.begin(), op_buf_.end(), 0);
  reset(op_buf_);
}

void VosDutSim::reset(std::uint64_t a, std::uint64_t b) {
  VOSIM_EXPECTS(pins_.num_operands() == 2);
  op_buf_[0] = a;
  op_buf_[1] = b;
  reset(op_buf_);
}

VosOpResult VosDutSim::apply(std::span<const std::uint64_t> operands) {
  pins_.fill_inputs(operands, input_buf_.data());
  return unpack(sim_->step(input_buf_));
}

VosOpResult VosDutSim::apply(std::uint64_t a, std::uint64_t b) {
  VOSIM_EXPECTS(pins_.num_operands() == 2);
  op_buf_[0] = a;
  op_buf_[1] = b;
  return apply(op_buf_);
}

void VosDutSim::apply_batch(std::span<const std::uint64_t> operands,
                            std::size_t count,
                            std::span<VosOpResult> results) {
  const std::size_t nops = pins_.num_operands();
  VOSIM_EXPECTS(operands.size() == count * nops);
  VOSIM_EXPECTS(results.size() >= count);
  if (count == 0) return;
  const std::size_t npis = input_buf_.size();
  // Uncovered PIs (e.g. a carry-in pin) stay zero across the batch.
  batch_buf_.assign(count * npis, 0);
  step_buf_.resize(count);
  for (std::size_t k = 0; k < count; ++k)
    pins_.fill_inputs(operands.subspan(k * nops, nops),
                      batch_buf_.data() + k * npis);
  sim_->step_batch(batch_buf_, count, step_buf_);
  for (std::size_t k = 0; k < count; ++k) results[k] = unpack(step_buf_[k]);
}

void VosDutSim::apply_batch(std::span<const std::uint64_t> a,
                            std::span<const std::uint64_t> b,
                            std::span<VosOpResult> results) {
  VOSIM_EXPECTS(pins_.num_operands() == 2);
  VOSIM_EXPECTS(a.size() == b.size());
  flat_buf_.resize(2 * a.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    flat_buf_[2 * k] = a[k];
    flat_buf_[2 * k + 1] = b[k];
  }
  apply_batch(flat_buf_, a.size(), results);
}

}  // namespace vosim
