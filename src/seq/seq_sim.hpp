// Clocked simulation of a SeqDut: one SimEngine per stage, explicit
// register banks, per-flop setup margin, per-cycle clock/latch energy
// and in-simulator Razor detection.
//
// Every step_cycle():
//   1. Launch edge — the register banks latch simultaneously: the input
//      bank takes the new external operands, bank k takes stage k-1's
//      output as sampled at the previous capture edge (errors included).
//   2. Each stage propagates its newly latched operands for one clock
//      period on its engine's step_cycle path, so transitions that miss
//      the capture edge latch wrong values and carry into later cycles.
//   3. Capture edge — each stage is sampled at Tclk − t_setup (per-flop
//      setup check); the shadow sample is the stage's functional settled
//      value, and every (main, shadow) pair feeds that stage's
//      DoubleSamplingMonitor — Razor flags from simulator truth, not
//      synthetic injection (paper [17], Kaul et al.).
//
// Per-cycle energy = Σ stage window dynamic energy + Σ stage leakage +
// register clock/latch energy (num_flops × dff_clock_energy × Vdd²).
#ifndef VOSIM_SEQ_SEQ_SIM_HPP
#define VOSIM_SEQ_SEQ_SIM_HPP

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "src/obs/probe.hpp"
#include "src/runtime/error_monitor.hpp"
#include "src/seq/seq_dut.hpp"
#include "src/sim/sim_engine.hpp"

namespace vosim {

/// Outcome of one pipeline clock cycle.
struct SeqCycleResult {
  /// Output-register value latched at this cycle's capture edge.
  std::uint64_t captured = 0;
  /// Golden (zero-delay) pipeline output aligned with `captured` —
  /// the result the operands applied latency_cycles()-1 calls ago
  /// should have produced. Only meaningful once `output_valid`.
  std::uint64_t expected = 0;
  /// False during pipeline fill (the first latency_cycles()-1 cycles).
  bool output_valid = false;
  /// Window dynamic + leakage + register clock/latch energy (fJ).
  double energy_fj = 0.0;
  /// Worst stage settle estimate this cycle (ps).
  double max_settle_ps = 0.0;
  /// Bit k set: stage k's Razor shadow disagreed with its main sample
  /// this cycle (a local timing error, not an inherited one).
  std::uint32_t razor_flags = 0;
};

/// Per-cycle event traces for multi-cycle VCD export (event engine with
/// record_trace only).
struct SeqCycleTrace {
  std::vector<std::vector<TraceEvent>> stage_events;        ///< per stage
  std::vector<std::vector<std::uint8_t>> stage_initial;     ///< per stage
  std::vector<std::uint64_t> bank_words;  ///< latched banks, input first
};

/// Streams clocked operations through a pipelined DUT at one operating
/// triad. All register banks start at the all-zero settled state.
class SeqSim {
 public:
  /// The SeqDut must outlive the simulator. `config.engine` selects the
  /// backend for every stage; `config.record_trace` (event engine only)
  /// accumulates per-cycle traces for write_seq_vcd.
  /// `monitor_window` sizes each stage's Razor monitor window.
  SeqSim(const SeqDut& seq, const CellLibrary& lib,
         const OperatingTriad& op, const TimingSimConfig& config = {},
         std::size_t monitor_window = 256);

  /// Re-settles every stage and bank to the all-zero state; clears the
  /// golden queue and trace accumulator (monitors keep lifetime counts,
  /// windows are reset).
  void reset();

  /// One clock cycle: operands.size() must equal num_operands() and
  /// operand k must fit operand_width(k) bits.
  SeqCycleResult step_cycle(std::span<const std::uint64_t> operands);
  /// Two-operand convenience.
  SeqCycleResult step_cycle(std::uint64_t a, std::uint64_t b);

  /// Batched clocked stepping: cycle c's operands occupy
  /// operands[c*num_operands(), (c+1)*num_operands()) and its outcome
  /// lands in results[c]. Bit-exact with `count` sequential
  /// step_cycle() calls — captured/expected words, per-cycle energy
  /// (same floating-point accumulation order) and Razor monitor
  /// statistics are all identical. Each stage engine runs its native
  /// step_cycle_batch (64 cycles per levelized pass; the register
  /// banks between stages become packed lane words shifted by one
  /// cycle) and the golden pipeline is evaluated lane-parallel.
  /// Tracing simulators fall back to the scalar loop.
  void step_cycle_batch(std::span<const std::uint64_t> operands,
                        std::size_t count,
                        std::span<SeqCycleResult> results);

  const SeqDut& seq() const noexcept { return seq_; }
  std::size_t num_stages() const noexcept { return engines_.size(); }
  std::size_t num_operands() const noexcept { return seq_.num_operands(); }
  int output_width() const noexcept { return seq_.output_width(); }
  std::size_t latency_cycles() const noexcept {
    return seq_.latency_cycles();
  }
  const OperatingTriad& triad() const noexcept { return op_; }
  EngineKind engine_kind() const noexcept { return engines_[0]->kind(); }
  std::uint64_t cycles() const noexcept { return cycles_; }

  /// Stage k's engine — for attaching per-stage SimObservers (e.g. an
  /// ErrorProvenance per stage). Observers attached here see the
  /// scalar step_cycle path and the levelized batch path, but not the
  /// event engine's batch fallback any differently: both route through
  /// the engines' own dispatch sites.
  SimEngine& stage_engine(std::size_t k) { return *engines_.at(k); }
  const SimEngine& stage_engine(std::size_t k) const {
    return *engines_.at(k);
  }

  /// Register clock/latch energy charged every cycle (fJ).
  double clock_energy_fj_per_cycle() const noexcept {
    return clock_energy_fj_;
  }
  /// Σ stage leakage per cycle (fJ), integrated over the full Tclk —
  /// the stage engines run on the capture period (Tclk − setup), so
  /// their per-op leakage is rescaled by Tclk / (Tclk − setup).
  double leakage_energy_fj_per_cycle() const noexcept;
  /// The period the stage engines actually propagate and rebase on:
  /// Tclk − t_setup (ps). Launch and capture edges coincide there —
  /// the setup window is borrowed from the next cycle's propagation,
  /// a deliberate simplification (DESIGN.md §10); the multi-cycle VCD
  /// spaces cycles by this period so event times stay aligned.
  double capture_period_ps() const noexcept { return capture_tclk_ps_; }

  /// Moves every stage engine's capture threshold to `capture_ps` on
  /// the same die (SimEngine::retarget_tclk_ps) and refreshes the
  /// hoisted per-stage leakage. Returns false — and changes nothing —
  /// unless every stage runs the levelized backend. This is the
  /// characterizer's normalized-grid tool: Vdd/Vbb move as one common
  /// delay-scale factor, so a whole triad ladder replays on one
  /// normalized pipeline by sliding the threshold (energies rescaled
  /// by the caller); triad() keeps reporting the constructed triad.
  /// Call reset() before the next stream.
  bool retarget_capture_ps(double capture_ps);

  /// Stage k's Razor monitor (shadow-vs-main statistics from the
  /// simulator, the closed-loop controller's sensor).
  const DoubleSamplingMonitor& stage_monitor(std::size_t k) const {
    return monitors_.at(k);
  }
  /// Stage k's flagged-operation rate over the monitor window.
  double stage_op_error_rate(std::size_t k) const {
    return monitors_.at(k).window_op_error_rate();
  }
  /// Highest windowed flagged-op rate across stages — the signal the
  /// closed-loop controller regulates.
  double worst_stage_op_error_rate() const;
  /// Clears every stage monitor's window (after a triad switch).
  void reset_monitor_windows();

  /// Per-cycle traces accumulated since the last reset/clear (event
  /// engine with record_trace; empty otherwise).
  std::span<const SeqCycleTrace> cycle_traces() const noexcept {
    return traces_;
  }
  void clear_traces() { traces_.clear(); }

 private:
  /// The pipeline's settled function on the cached pin maps (the
  /// per-cycle golden; avoids rebuilding DutPinMaps in the hot loop).
  std::uint64_t golden_output(std::span<const std::uint64_t> operands);

  /// Lane-parallel golden: out[c] = golden_output(cycle c's operands)
  /// for up to lanes::kWordLanes cycles, one packed evaluate_logic
  /// pass per stage. Bit-identical to the scalar golden (pure logic).
  void golden_output_batch(std::span<const std::uint64_t> operands,
                           std::size_t count, std::uint64_t* out);

  const SeqDut& seq_;
  OperatingTriad op_;
  double capture_tclk_ps_ = 0.0;
  double leakage_scale_ = 1.0;  ///< Tclk / (Tclk − setup)
  bool tracing_ = false;
  double clock_energy_fj_ = 0.0;
  std::vector<DutPinMap> pins_;
  std::vector<std::vector<int>> stage_widths_;  ///< operand widths / stage
  /// Stage k's PI slot for every bit of its packed register-bank word
  /// (operand buses concatenated in split_bank_word order): the batch
  /// path scatters bank bits straight into engine input buffers with no
  /// per-cycle split_bank_word/fill_inputs round-trip (k >= 1; stage 0
  /// is fed from the separate external operand words).
  std::vector<std::vector<std::size_t>> bank_slot_;
  /// Net feeding output-bus bit i of stage k (primary-output order
  /// resolved through the pin map), for lane-word golden gathers.
  std::vector<std::vector<NetId>> stage_po_net_;
  /// Per-stage leakage × Tclk/(Tclk−setup), precomputed: the identical
  /// product the scalar path used to evaluate every cycle.
  std::vector<double> stage_leak_fj_;
  std::vector<std::unique_ptr<SimEngine>> engines_;
  /// bank_[0]: external operand words; bank_[k]: stage k's operand
  /// words, split from stage k-1's sampled output.
  std::vector<std::vector<std::uint64_t>> bank_;
  std::vector<std::uint64_t> stage_sampled_;  ///< last capture, per stage
  std::vector<DoubleSamplingMonitor> monitors_;
  std::deque<std::uint64_t> golden_;  ///< expected outputs in flight
  std::vector<std::uint8_t> input_buf_;
  std::vector<std::uint64_t> golden_words_;  ///< golden-eval scratch
  /// Per-stage bundled TraceRecorders, attached to the stage engines
  /// when tracing — the observer-based replacement for the old
  /// in-engine take_trace plumbing. Sized once in the constructor; the
  /// engines hold borrowed pointers into it.
  std::vector<TraceRecorder> recorders_;
  std::vector<SeqCycleTrace> traces_;
  std::uint64_t cycles_ = 0;
  // step_cycle_batch scratch (avoids per-chunk allocation).
  std::vector<std::uint8_t> batch_inputs_;     ///< chunk × stage PIs
  std::vector<StepResult> batch_results_;      ///< stages × chunk
  std::vector<std::uint64_t> batch_sampled_w_;  ///< stages × chunk
  std::vector<std::uint64_t> batch_shadow_w_;   ///< stages × chunk
  std::vector<std::uint64_t> batch_golden_;     ///< per-cycle golden
  std::vector<std::uint64_t> golden_pi_words_;  ///< per-PI lane words
  std::vector<std::uint64_t> golden_values_;    ///< per-net lane words
};

}  // namespace vosim

#endif  // VOSIM_SEQ_SEQ_SIM_HPP
