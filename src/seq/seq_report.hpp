// Synthesis/timing views of a pipeline: per-stage slack at a triad and
// the pipeline clock constraint (the slowest stage sets Tclk for every
// register bank, which is the whole point of pipelining the operator).
#ifndef VOSIM_SEQ_SEQ_REPORT_HPP
#define VOSIM_SEQ_SEQ_REPORT_HPP

#include <vector>

#include "src/seq/seq_dut.hpp"
#include "src/sta/slack.hpp"
#include "src/sta/synthesis_report.hpp"

namespace vosim {

/// Per-stage slack of the pipeline at `op` (sta/slack.hpp stage_slacks
/// over the stage netlists).
std::vector<StageSlack> seq_stage_slacks(const SeqDut& seq,
                                         const CellLibrary& lib,
                                         const OperatingTriad& op);

/// Signoff synthesis report per stage (Table-II style, one row each).
std::vector<SynthesisReport> seq_stage_reports(const SeqDut& seq,
                                               const CellLibrary& lib);

/// The pipeline's synthesis clock constraint: the largest per-stage
/// signoff critical path (ns). Triad grids for pipelines scale off this
/// (make_dut_triads), exactly like a combinational DUT's own CP.
double seq_critical_path_ns(const SeqDut& seq, const CellLibrary& lib);

}  // namespace vosim

#endif  // VOSIM_SEQ_SEQ_REPORT_HPP
