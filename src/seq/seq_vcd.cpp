#include "src/seq/seq_vcd.hpp"

#include <numeric>
#include <string>

#include "src/sim/vcd.hpp"
#include "src/util/contracts.hpp"

namespace vosim {

void write_seq_vcd(const SeqSim& sim, std::ostream& os) {
  const auto traces = sim.cycle_traces();
  if (traces.empty())
    throw ContractViolation(
        "write_seq_vcd: no cycle traces (run the event engine with "
        "record_trace and step at least one cycle)");

  const SeqDut& seq = sim.seq();
  // Cycles are spaced by the period the engines actually simulate on
  // (Tclk − setup), so per-cycle event times land inside their cycle.
  VcdWriter writer(sim.capture_period_ps());
  for (std::size_t k = 0; k < seq.num_stages(); ++k)
    writer.add_scope("stage" + std::to_string(k),
                     seq.stages[k].netlist);
  for (std::size_t k = 0; k < seq.num_stages(); ++k) {
    const std::vector<int> widths = seq.stages[k].operand_widths();
    const int bits = std::accumulate(widths.begin(), widths.end(), 0);
    writer.add_word(k == 0 ? "bank_in" : "bank" + std::to_string(k), bits);
  }
  writer.add_word("out_reg", seq.output_width());

  writer.begin(traces.front().stage_initial);
  for (const SeqCycleTrace& t : traces)
    writer.append_cycle(t.stage_events, t.bank_words);
  writer.write(os);
}

}  // namespace vosim
