// Sequential (pipelined) DUT: the paper's operators "sit between
// pipeline registers" (src/tech/library.hpp), and this module makes the
// registers real. A SeqDut is an ordered list of combinational
// DutNetlist stages with an implicit register bank between consecutive
// stages (plus registered external inputs and a registered output):
// stage k's operand buses are fed, in bus order, by consecutive bits of
// stage k-1's registered output word. The clocked simulator
// (src/seq/seq_sim.hpp) latches each stage's Tclk-sampled output into
// the next bank every cycle, so timing errors propagate across cycles —
// the regime of timing-error-correction DVS (Kaul et al.) and
// block-level accuracy-configurable VOS (Bahoo et al.).
#ifndef VOSIM_SEQ_SEQ_DUT_HPP
#define VOSIM_SEQ_SEQ_DUT_HPP

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/netlist/dut.hpp"

namespace vosim {

class CellLibrary;

/// A validated pipeline of combinational stages. Build via make_seq_dut,
/// wrap_as_pipeline or build_seq_circuit.
struct SeqDut {
  std::vector<DutNetlist> stages;
  std::string kind;          ///< registry spec, e.g. "pipe2-mul8"
  std::string display_name;  ///< e.g. "2-stage pipelined 8x8 multiplier"

  std::size_t num_stages() const noexcept { return stages.size(); }
  const DutNetlist& stage(std::size_t k) const { return stages.at(k); }
  /// External operand widths — stage 0's buses.
  std::vector<int> operand_widths() const {
    return stages.front().operand_widths();
  }
  std::size_t num_operands() const { return stages.front().num_operands(); }
  int operand_width(std::size_t i) const {
    return stages.front().operand_width(i);
  }
  /// Pipeline result width — the last stage's output bus.
  int output_width() const { return stages.back().output_width(); }
  /// Cycles from applying operands to capturing their result: operands
  /// latch into the input bank at a cycle's launch edge, each stage
  /// takes one cycle, and the result latches at the last stage's
  /// capture edge — num_stages() cycles end to end.
  std::size_t latency_cycles() const noexcept { return stages.size(); }
  /// Register bits: the input bank (stage 0 operands) plus one bank per
  /// stage output (inter-stage banks and the output register).
  int num_flops() const;
  /// Total combinational gate count across stages.
  std::size_t num_gates() const;
};

/// Validates and wraps stages as a pipeline. Throws ContractViolation
/// when a stage boundary does not line up (stage k's operand widths
/// must sum to stage k-1's output width) or a stage violates the
/// DutPinMap bus contracts.
SeqDut make_seq_dut(std::vector<DutNetlist> stages, std::string kind,
                    std::string display_name);

/// Wraps one combinational DUT as a single-stage pipeline: registered
/// inputs, registered output, clocked (truncating) evaluation — the
/// sequential view of any registry circuit (used by the campaign's
/// sim-seq backend).
SeqDut wrap_as_pipeline(DutNetlist dut);

/// The pipeline's functional (zero-delay) result: the composition of
/// the stages' settled functions. This is the golden reference the
/// characterizer and the Razor monitors score against. operands.size()
/// must equal num_operands() and operand k must fit its bus width.
std::uint64_t seq_settled_output(const SeqDut& seq,
                                 std::span<const std::uint64_t> operands);

/// Splits one registered bank word into per-bus operand words: widths
/// are consumed LSB-first, exactly how stage k's buses read stage
/// k-1's output register.
std::vector<std::uint64_t> split_bank_word(std::uint64_t word,
                                           std::span<const int> widths);

/// Clock/latch energy every cycle charges for the register banks:
/// num_flops() × the library's per-flop clock energy, scaled by
/// (Vdd / 1 V)² (clocking is a CV² cost like any other toggle).
double seq_clock_energy_fj(const SeqDut& seq, const CellLibrary& lib,
                           double vdd_v);

/// Builds a pipelined circuit from a registry spec:
///   pipe2-mul8     2-stage 8x8 multiplier: four 4x4 partial products,
///                  then a shift-align adder tree
///   pipe3-mac4x8   3-stage 4-term 8-bit MAC: multipliers, pairwise
///                  adds, final add
///   fir4-pipe      3-stage 4-tap moving-sum FIR: x0+x1, +x2, +x3 with
///                  delay registers carrying the later taps
/// Throws std::invalid_argument (with a near-match suggestion) on a
/// malformed spec.
SeqDut build_seq_circuit(const std::string& spec);

/// True when `spec` names a sequential registry circuit (routes the CLI
/// and the campaign between build_circuit and build_seq_circuit).
bool is_seq_circuit_spec(const std::string& spec);

/// Diagnostic for an unknown circuit spec across BOTH registries:
/// combinational grammar help + pipeline help + the nearest registered
/// spec from either corpus. The CLI rethrows with this, so a pipeline
/// typo that happened to route through the combinational parser (e.g.
/// "pip2-mul8") still suggests the pipeline it meant.
std::string unknown_circuit_message(const std::string& spec);

/// The canonical sequential registry specs.
std::vector<std::string> seq_circuit_registry();

/// One-line list of the sequential circuit specs (CLI usage text).
std::string known_seq_circuits_help();

}  // namespace vosim

#endif  // VOSIM_SEQ_SEQ_DUT_HPP
