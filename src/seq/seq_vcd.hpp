// Multi-cycle VCD export of a pipelined run: one scope per stage, the
// register banks as multi-bit words latched at each launch edge, and
// per-cycle timestamps — a pipelined trace that opens cleanly in
// GTKWave. Requires a SeqSim on the event backend with record_trace.
#ifndef VOSIM_SEQ_SEQ_VCD_HPP
#define VOSIM_SEQ_SEQ_VCD_HPP

#include <iosfwd>

#include "src/seq/seq_sim.hpp"

namespace vosim {

/// Writes every cycle accumulated in `sim` since its last
/// reset/clear_traces. Throws ContractViolation when the simulator has
/// no traces (not the event backend, record_trace off, or no cycles).
void write_seq_vcd(const SeqSim& sim, std::ostream& os);

}  // namespace vosim

#endif  // VOSIM_SEQ_SEQ_VCD_HPP
