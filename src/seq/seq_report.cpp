#include "src/seq/seq_report.hpp"

#include <algorithm>

namespace vosim {

std::vector<StageSlack> seq_stage_slacks(const SeqDut& seq,
                                         const CellLibrary& lib,
                                         const OperatingTriad& op) {
  std::vector<const Netlist*> nets;
  nets.reserve(seq.num_stages());
  for (const DutNetlist& stage : seq.stages) nets.push_back(&stage.netlist);
  return stage_slacks(nets, lib, op);
}

std::vector<SynthesisReport> seq_stage_reports(const SeqDut& seq,
                                               const CellLibrary& lib) {
  std::vector<SynthesisReport> reports;
  reports.reserve(seq.num_stages());
  for (const DutNetlist& stage : seq.stages)
    reports.push_back(synthesize_report(stage.netlist, lib));
  return reports;
}

double seq_critical_path_ns(const SeqDut& seq, const CellLibrary& lib) {
  double cp = 0.0;
  for (const SynthesisReport& r : seq_stage_reports(seq, lib))
    cp = std::max(cp, r.critical_path_ns);
  return cp;
}

}  // namespace vosim
