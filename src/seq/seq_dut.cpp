#include "src/seq/seq_dut.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/netlist/adder_tree.hpp"
#include "src/netlist/adders.hpp"
#include "src/netlist/eval.hpp"
#include "src/netlist/multiplier.hpp"
#include "src/tech/library.hpp"
#include "src/util/bits.hpp"
#include "src/util/contracts.hpp"
#include "src/util/fuzzy.hpp"

namespace vosim {

namespace {

/// Creates an LSB-first primary-input bus.
std::vector<NetId> input_bus(Netlist& nl, const std::string& name,
                             int width) {
  std::vector<NetId> bus;
  bus.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i)
    bus.push_back(nl.add_input(name + "_" + std::to_string(i)));
  return bus;
}

/// Fills `subs` (sized to src's PI count) so src bus net i maps to
/// dst_nets[i]; the remaining positions must be covered by other buses.
void substitute_bus(std::vector<NetId>& subs, std::span<const NetId> src_pis,
                    std::span<const NetId> bus,
                    std::span<const NetId> dst_nets) {
  VOSIM_EXPECTS(bus.size() == dst_nets.size());
  for (std::size_t i = 0; i < bus.size(); ++i) {
    const auto it = std::find(src_pis.begin(), src_pis.end(), bus[i]);
    VOSIM_EXPECTS(it != src_pis.end());
    subs[static_cast<std::size_t>(it - src_pis.begin())] = dst_nets[i];
  }
}

std::vector<NetId> map_bus(const std::vector<NetId>& map,
                           std::span<const NetId> bus) {
  std::vector<NetId> out;
  out.reserve(bus.size());
  for (const NetId n : bus) out.push_back(map[n]);
  return out;
}

/// Pads `bus` with the shared constant-zero net up to `width` bits.
std::vector<NetId> zext(std::span<const NetId> bus, int width, NetId zero) {
  VOSIM_EXPECTS(static_cast<int>(bus.size()) <= width);
  std::vector<NetId> out(bus.begin(), bus.end());
  out.resize(static_cast<std::size_t>(width), zero);
  return out;
}

/// Stamps a ripple-carry adder of `width` bits summing buses a and b
/// (each zero-extended to `width`); returns the (width+1)-bit sum bus.
std::vector<NetId> stamp_rca(Netlist& nl, const std::string& prefix,
                             int width, std::span<const NetId> a,
                             std::span<const NetId> b, NetId zero) {
  const AdderNetlist add = build_rca(width);
  const auto pis = add.netlist.primary_inputs();
  std::vector<NetId> subs(pis.size(), invalid_net);
  const std::vector<NetId> ax = zext(a, width, zero);
  const std::vector<NetId> bx = zext(b, width, zero);
  substitute_bus(subs, pis, add.a, ax);
  substitute_bus(subs, pis, add.b, bx);
  const std::vector<NetId> map = append_copy(nl, add.netlist, subs, prefix);
  return map_bus(map, add.sum);
}

/// Stamps a `width`-bit array multiplier over buses a and b; returns the
/// 2·width-bit product bus.
std::vector<NetId> stamp_mul(Netlist& nl, const std::string& prefix,
                             int width, std::span<const NetId> a,
                             std::span<const NetId> b) {
  const MultiplierNetlist mul = build_array_multiplier(width);
  const auto pis = mul.netlist.primary_inputs();
  std::vector<NetId> subs(pis.size(), invalid_net);
  substitute_bus(subs, pis, mul.a, a);
  substitute_bus(subs, pis, mul.b, b);
  const std::vector<NetId> map = append_copy(nl, mul.netlist, subs, prefix);
  return map_bus(map, mul.prod);
}

/// Buffers every bit of a bus (register pass-through inside a stage).
std::vector<NetId> buffer_bus(Netlist& nl, const std::string& name,
                              std::span<const NetId> bus) {
  std::vector<NetId> out;
  out.reserve(bus.size());
  for (std::size_t i = 0; i < bus.size(); ++i)
    out.push_back(nl.add_gate(CellKind::kBuf, {bus[i]},
                              name + "_" + std::to_string(i)));
  return out;
}

DutNetlist finish_stage(Netlist nl, std::vector<DutBus> inputs,
                        std::vector<NetId> outputs, std::string kind) {
  for (const NetId n : outputs) nl.mark_output(n);
  nl.finalize();
  DutNetlist dut{.netlist = std::move(nl),
                 .inputs = std::move(inputs),
                 .outputs = std::move(outputs),
                 .kind = kind,
                 .display_name = std::move(kind)};
  return dut;
}

/// pipe2-mul8 stage 0: the four 4x4 partial products of an 8x8
/// multiply (p00 = aL·bL, p01 = aL·bH, p10 = aH·bL, p11 = aH·bH),
/// 32 output bits.
DutNetlist pipe2_mul8_stage0() {
  Netlist nl("pipe2_mul8_s0");
  const std::vector<NetId> a = input_bus(nl, "a", 8);
  const std::vector<NetId> b = input_bus(nl, "b", 8);
  const std::span<const NetId> aL{a.data(), 4};
  const std::span<const NetId> aH{a.data() + 4, 4};
  const std::span<const NetId> bL{b.data(), 4};
  const std::span<const NetId> bH{b.data() + 4, 4};
  struct Part {
    std::span<const NetId> x;
    std::span<const NetId> y;
    const char* tag;
  };
  const Part parts[] = {
      {aL, bL, "p00"}, {aL, bH, "p01"}, {aH, bL, "p10"}, {aH, bH, "p11"}};
  std::vector<NetId> out;
  for (const Part& part : parts) {
    const std::vector<NetId> p =
        stamp_mul(nl, std::string(part.tag) + "_", 4, part.x, part.y);
    out.insert(out.end(), p.begin(), p.end());
  }
  return finish_stage(std::move(nl), {DutBus{"a", a}, DutBus{"b", b}},
                      std::move(out), "pipe2-mul8.s0");
}

/// pipe2-mul8 stage 1: shift-align and sum the four partial products —
/// p00 + ((p01 + p10) << 4) + (p11 << 8) via a 4-leaf 16-bit adder
/// tree, 18 output bits (a·b zero-extended).
DutNetlist pipe2_mul8_stage1() {
  Netlist nl("pipe2_mul8_s1");
  std::vector<DutBus> inputs;
  std::vector<std::vector<NetId>> p;
  for (const char* name : {"p00", "p01", "p10", "p11"}) {
    p.push_back(input_bus(nl, name, 8));
    inputs.push_back(DutBus{name, p.back()});
  }
  const NetId zero = nl.add_gate(CellKind::kTieLo, {}, "zero");
  const auto shifted = [&](const std::vector<NetId>& bus, int shift) {
    std::vector<NetId> leaf(static_cast<std::size_t>(shift), zero);
    leaf.insert(leaf.end(), bus.begin(), bus.end());
    leaf.resize(16, zero);
    return leaf;
  };
  const AdderTreeNetlist tree = build_adder_tree(4, 16);
  const auto pis = tree.netlist.primary_inputs();
  std::vector<NetId> subs(pis.size(), invalid_net);
  substitute_bus(subs, pis, tree.leaves[0], shifted(p[0], 0));
  substitute_bus(subs, pis, tree.leaves[1], shifted(p[1], 4));
  substitute_bus(subs, pis, tree.leaves[2], shifted(p[2], 4));
  substitute_bus(subs, pis, tree.leaves[3], shifted(p[3], 8));
  const std::vector<NetId> map =
      append_copy(nl, tree.netlist, subs, "sum_");
  return finish_stage(std::move(nl), std::move(inputs),
                      map_bus(map, tree.sum), "pipe2-mul8.s1");
}

SeqDut build_pipe2_mul8() {
  std::vector<DutNetlist> stages;
  stages.push_back(pipe2_mul8_stage0());
  stages.push_back(pipe2_mul8_stage1());
  return make_seq_dut(std::move(stages), "pipe2-mul8",
                      "2-stage pipelined 8x8 multiplier");
}

/// pipe3-mac4x8 stage 0: four 8x8 products (64 output bits — the
/// packed-word ceiling).
DutNetlist pipe3_mac_stage0() {
  Netlist nl("pipe3_mac_s0");
  std::vector<DutBus> inputs;
  std::vector<NetId> out;
  for (int t = 0; t < 4; ++t) {
    const std::string ta = "a" + std::to_string(t);
    const std::string tb = "b" + std::to_string(t);
    const std::vector<NetId> a = input_bus(nl, ta, 8);
    const std::vector<NetId> b = input_bus(nl, tb, 8);
    const std::vector<NetId> prod =
        stamp_mul(nl, "m" + std::to_string(t) + "_", 8, a, b);
    out.insert(out.end(), prod.begin(), prod.end());
    inputs.push_back(DutBus{ta, a});
    inputs.push_back(DutBus{tb, b});
  }
  return finish_stage(std::move(nl), std::move(inputs), std::move(out),
                      "pipe3-mac4x8.s0");
}

/// pipe3-mac4x8 stage 1: pairwise sums s0 = p0+p1, s1 = p2+p3
/// (2 × 17 = 34 output bits).
DutNetlist pipe3_mac_stage1() {
  Netlist nl("pipe3_mac_s1");
  std::vector<DutBus> inputs;
  std::vector<std::vector<NetId>> p;
  for (int t = 0; t < 4; ++t) {
    const std::string name = "p" + std::to_string(t);
    p.push_back(input_bus(nl, name, 16));
    inputs.push_back(DutBus{name, p.back()});
  }
  const NetId zero = nl.add_gate(CellKind::kTieLo, {}, "zero");
  std::vector<NetId> out = stamp_rca(nl, "s0_", 16, p[0], p[1], zero);
  const std::vector<NetId> s1 = stamp_rca(nl, "s1_", 16, p[2], p[3], zero);
  out.insert(out.end(), s1.begin(), s1.end());
  return finish_stage(std::move(nl), std::move(inputs), std::move(out),
                      "pipe3-mac4x8.s1");
}

/// pipe3-mac4x8 stage 2: the final s0 + s1 (18 output bits, the same
/// width as the combinational mac4x8).
DutNetlist pipe3_mac_stage2() {
  Netlist nl("pipe3_mac_s2");
  const std::vector<NetId> s0 = input_bus(nl, "s0", 17);
  const std::vector<NetId> s1 = input_bus(nl, "s1", 17);
  const NetId zero = nl.add_gate(CellKind::kTieLo, {}, "zero");
  // rca17 sum + carry-out = 18 bits, the combinational mac4x8 width.
  std::vector<NetId> sum = stamp_rca(nl, "acc_", 17, s0, s1, zero);
  return finish_stage(std::move(nl), {DutBus{"s0", s0}, DutBus{"s1", s1}},
                      std::move(sum), "pipe3-mac4x8.s2");
}

SeqDut build_pipe3_mac4x8() {
  std::vector<DutNetlist> stages;
  stages.push_back(pipe3_mac_stage0());
  stages.push_back(pipe3_mac_stage1());
  stages.push_back(pipe3_mac_stage2());
  return make_seq_dut(std::move(stages), "pipe3-mac4x8",
                      "3-stage pipelined 4-term 8x8 MAC");
}

/// fir4-pipe stage 0: s = x0 + x1 plus delay registers for the later
/// taps (buffered pass-throughs feeding the next bank).
DutNetlist fir4_stage0() {
  Netlist nl("fir4_s0");
  std::vector<DutBus> inputs;
  std::vector<std::vector<NetId>> x;
  for (int t = 0; t < 4; ++t) {
    const std::string name = "x" + std::to_string(t);
    x.push_back(input_bus(nl, name, 8));
    inputs.push_back(DutBus{name, x.back()});
  }
  const NetId zero = nl.add_gate(CellKind::kTieLo, {}, "zero");
  std::vector<NetId> out = stamp_rca(nl, "s_", 8, x[0], x[1], zero);
  const std::vector<NetId> d2 = buffer_bus(nl, "d2", x[2]);
  const std::vector<NetId> d3 = buffer_bus(nl, "d3", x[3]);
  out.insert(out.end(), d2.begin(), d2.end());
  out.insert(out.end(), d3.begin(), d3.end());
  return finish_stage(std::move(nl), std::move(inputs), std::move(out),
                      "fir4-pipe.s0");
}

/// fir4-pipe stage 1: s2 = s + x2, x3 delayed once more.
DutNetlist fir4_stage1() {
  Netlist nl("fir4_s1");
  const std::vector<NetId> s = input_bus(nl, "s", 9);
  const std::vector<NetId> x2 = input_bus(nl, "x2", 8);
  const std::vector<NetId> x3 = input_bus(nl, "x3", 8);
  const NetId zero = nl.add_gate(CellKind::kTieLo, {}, "zero");
  std::vector<NetId> out = stamp_rca(nl, "s2_", 9, s, x2, zero);
  const std::vector<NetId> d3 = buffer_bus(nl, "d3", x3);
  out.insert(out.end(), d3.begin(), d3.end());
  return finish_stage(
      std::move(nl),
      {DutBus{"s", s}, DutBus{"x2", x2}, DutBus{"x3", x3}},
      std::move(out), "fir4-pipe.s1");
}

/// fir4-pipe stage 2: y = s2 + x3 — the 4-tap moving sum.
DutNetlist fir4_stage2() {
  Netlist nl("fir4_s2");
  const std::vector<NetId> s2 = input_bus(nl, "s2", 10);
  const std::vector<NetId> x3 = input_bus(nl, "x3", 8);
  const NetId zero = nl.add_gate(CellKind::kTieLo, {}, "zero");
  std::vector<NetId> sum = stamp_rca(nl, "y_", 10, s2, x3, zero);
  return finish_stage(std::move(nl),
                      {DutBus{"s2", s2}, DutBus{"x3", x3}},
                      std::move(sum), "fir4-pipe.s2");
}

SeqDut build_fir4_pipe() {
  std::vector<DutNetlist> stages;
  stages.push_back(fir4_stage0());
  stages.push_back(fir4_stage1());
  stages.push_back(fir4_stage2());
  return make_seq_dut(std::move(stages), "fir4-pipe",
                      "3-stage 4-tap moving-sum FIR pipeline");
}

}  // namespace

int SeqDut::num_flops() const {
  int flops = 0;
  for (const DutBus& bus : stages.front().inputs)
    flops += static_cast<int>(bus.nets.size());
  for (const DutNetlist& s : stages) flops += s.output_width();
  return flops;
}

std::size_t SeqDut::num_gates() const {
  std::size_t gates = 0;
  for (const DutNetlist& s : stages) gates += s.netlist.num_gates();
  return gates;
}

SeqDut make_seq_dut(std::vector<DutNetlist> stages, std::string kind,
                    std::string display_name) {
  if (stages.empty())
    throw ContractViolation("make_seq_dut: a pipeline needs >= 1 stage");
  for (const DutNetlist& s : stages) {
    const DutPinMap check(s);  // validates the stage's bus contracts
    (void)check;
  }
  for (std::size_t k = 1; k < stages.size(); ++k) {
    int fed = 0;
    for (const int w : stages[k].operand_widths()) fed += w;
    if (fed != stages[k - 1].output_width())
      throw ContractViolation(
          "make_seq_dut('" + kind + "'): stage " + std::to_string(k) +
          " consumes " + std::to_string(fed) + " bits but stage " +
          std::to_string(k - 1) + " registers " +
          std::to_string(stages[k - 1].output_width()));
  }
  return SeqDut{std::move(stages), std::move(kind),
                std::move(display_name)};
}

SeqDut wrap_as_pipeline(DutNetlist dut) {
  const std::string kind = "seq(" + dut.kind + ")";
  const std::string display = "registered " + dut.display_name;
  std::vector<DutNetlist> stages;
  stages.push_back(std::move(dut));
  return make_seq_dut(std::move(stages), kind, display);
}

std::vector<std::uint64_t> split_bank_word(std::uint64_t word,
                                           std::span<const int> widths) {
  std::vector<std::uint64_t> out;
  out.reserve(widths.size());
  int shift = 0;
  for (const int w : widths) {
    out.push_back((word >> shift) & mask_n(w));
    shift += w;
  }
  return out;
}

std::uint64_t seq_settled_output(const SeqDut& seq,
                                 std::span<const std::uint64_t> operands) {
  VOSIM_EXPECTS(operands.size() == seq.num_operands());
  std::vector<std::uint64_t> words(operands.begin(), operands.end());
  std::uint64_t out = 0;
  for (std::size_t k = 0; k < seq.stages.size(); ++k) {
    const DutNetlist& stage = seq.stages[k];
    const DutPinMap pins(stage);
    std::vector<std::uint8_t> inputs(
        stage.netlist.primary_inputs().size(), 0);
    pins.fill_inputs(words, inputs.data());
    const std::vector<std::uint8_t> values =
        evaluate_logic(stage.netlist, inputs);
    out = pins.gather_output(
        pack_word(values, stage.netlist.primary_outputs()));
    // The registered word splits into the next stage's operand words.
    if (k + 1 < seq.stages.size())
      words = split_bank_word(out, seq.stages[k + 1].operand_widths());
  }
  return out;
}

double seq_clock_energy_fj(const SeqDut& seq, const CellLibrary& lib,
                           double vdd_v) {
  return seq.num_flops() * lib.dff_clock_energy_fj() * vdd_v * vdd_v;
}

std::string unknown_circuit_message(const std::string& spec) {
  std::string msg = "unknown circuit spec '" + spec + "'; " +
                    known_circuits_help() + "; " +
                    known_seq_circuits_help();
  std::vector<std::string> candidates = seq_circuit_registry();
  const std::vector<std::string> comb = circuit_registry_examples();
  candidates.insert(candidates.end(), comb.begin(), comb.end());
  const std::string near = closest_match(spec, candidates);
  if (!near.empty()) msg += " — did you mean '" + near + "'?";
  return msg;
}

SeqDut build_seq_circuit(const std::string& spec) {
  if (spec == "pipe2-mul8") return build_pipe2_mul8();
  if (spec == "pipe3-mac4x8") return build_pipe3_mac4x8();
  if (spec == "fir4-pipe") return build_fir4_pipe();
  throw std::invalid_argument(unknown_circuit_message(spec));
}

bool is_seq_circuit_spec(const std::string& spec) {
  return spec.rfind("pipe", 0) == 0 ||
         spec.find("-pipe") != std::string::npos;
}

std::vector<std::string> seq_circuit_registry() {
  return {"pipe2-mul8", "pipe3-mac4x8", "fir4-pipe"};
}

std::string known_seq_circuits_help() {
  return "supported pipelines: pipe2-mul8 pipe3-mac4x8 fir4-pipe "
         "(clocked multi-stage circuits; see DESIGN.md §10)";
}

}  // namespace vosim
