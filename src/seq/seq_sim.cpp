#include "src/seq/seq_sim.hpp"

#include <algorithm>

#include "src/netlist/eval.hpp"
#include "src/util/bits.hpp"
#include "src/tech/library.hpp"
#include "src/util/contracts.hpp"
#include "src/util/lanes.hpp"

namespace vosim {

namespace {

/// Packs per-bus operand words back into one registered bank word
/// (inverse of split_bank_word).
std::uint64_t pack_bank_word(std::span<const std::uint64_t> words,
                             std::span<const int> widths) {
  VOSIM_EXPECTS(words.size() == widths.size());
  std::uint64_t out = 0;
  int shift = 0;
  for (std::size_t i = 0; i < words.size(); ++i) {
    out |= words[i] << shift;
    shift += widths[i];
  }
  return out;
}

}  // namespace

SeqSim::SeqSim(const SeqDut& seq, const CellLibrary& lib,
               const OperatingTriad& op, const TimingSimConfig& config,
               std::size_t monitor_window)
    : seq_(seq), op_(op) {
  VOSIM_EXPECTS(!seq.stages.empty());
  // Per-flop setup check: every stage engine captures at Tclk − t_setup,
  // so a transition inside the setup window misses the register. The
  // engines run entirely on that shortened period (launch and capture
  // coincide; the setup window is borrowed from the next cycle's
  // propagation — DESIGN.md §10); leakage, a per-real-Tclk cost, is
  // rescaled back to the full period.
  const double setup_ns = lib.dff_setup_ps() * 1e-3;
  VOSIM_EXPECTS(op.tclk_ns > setup_ns);
  const OperatingTriad capture{op.tclk_ns - setup_ns, op.vdd_v, op.vbb_v};
  capture_tclk_ps_ = capture.tclk_ns * 1e3;
  leakage_scale_ = op.tclk_ns / capture.tclk_ns;

  tracing_ = config.record_trace && config.engine == EngineKind::kEvent;
  clock_energy_fj_ = seq_clock_energy_fj(seq, lib, op.vdd_v);

  pins_.reserve(seq.stages.size());
  stage_widths_.reserve(seq.stages.size());
  engines_.reserve(seq.stages.size());
  for (const DutNetlist& stage : seq.stages) {
    pins_.emplace_back(stage);
    stage_widths_.push_back(stage.operand_widths());
    engines_.push_back(make_engine(stage.netlist, lib, capture, config));
  }
  if (tracing_) {
    // One bundled TraceRecorder per stage; the engines emit their
    // transitions through the observer interface and the recorders
    // hand each cycle's trace to step_cycle.
    recorders_.resize(seq.stages.size());
    for (std::size_t k = 0; k < seq.stages.size(); ++k)
      engines_[k]->attach_observer(&recorders_[k]);
  }
  // Batch-path precomputation. bank_slot_[k][j]: the PI slot of bit j
  // of stage k's packed bank word — split_bank_word concatenates the
  // operand buses in order, so bank bit j of bus b (at offset Σ earlier
  // widths) lands on pins_[k].input_slots(b)[j - offset]. stage_po_net_
  // resolves output-bus bit i through the pin map to the net that
  // drives it, and stage_leak_fj_ hoists the per-cycle leakage product
  // (bit-identical to evaluating it in the loop).
  bank_slot_.resize(seq.stages.size());
  stage_po_net_.resize(seq.stages.size());
  stage_leak_fj_.reserve(seq.stages.size());
  for (std::size_t k = 0; k < seq.stages.size(); ++k) {
    for (std::size_t b = 0; b < pins_[k].num_operands(); ++b) {
      const auto slots = pins_[k].input_slots(b);
      bank_slot_[k].insert(bank_slot_[k].end(), slots.begin(), slots.end());
    }
    const auto pos = seq.stages[k].netlist.primary_outputs();
    for (const std::size_t s : pins_[k].output_slots())
      stage_po_net_[k].push_back(pos[s]);
    stage_leak_fj_.push_back(engines_[k]->leakage_energy_fj_per_op() *
                             leakage_scale_);
  }
  bank_.resize(seq.stages.size());
  stage_sampled_.assign(seq.stages.size(), 0);
  monitors_.reserve(seq.stages.size());
  for (std::size_t k = 0; k < seq.stages.size(); ++k)
    monitors_.emplace_back(seq.stages[k].output_width(), monitor_window);
  reset();
}

void SeqSim::reset() {
  for (std::size_t k = 0; k < engines_.size(); ++k) {
    const std::size_t npis =
        seq_.stages[k].netlist.primary_inputs().size();
    const std::vector<std::uint8_t> zeros(npis, 0);
    engines_[k]->reset(zeros);
    bank_[k].assign(seq_.stages[k].num_operands(), 0);
    // The stage drives its settled-at-zero outputs into the bank wires;
    // that is what the next capture edge would latch.
    stage_sampled_[k] = pins_[k].gather_output(pack_word(
        engines_[k]->settled_values(),
        seq_.stages[k].netlist.primary_outputs()));
    monitors_[k].reset_window();
  }
  golden_.clear();
  traces_.clear();
  cycles_ = 0;
}

bool SeqSim::retarget_capture_ps(double capture_ps) {
  VOSIM_EXPECTS(capture_ps > 0.0);
  for (const auto& e : engines_)
    if (e->kind() != EngineKind::kLevelized) return false;
  for (auto& e : engines_) e->retarget_tclk_ps(capture_ps);
  capture_tclk_ps_ = capture_ps;
  for (std::size_t k = 0; k < engines_.size(); ++k)
    stage_leak_fj_[k] =
        engines_[k]->leakage_energy_fj_per_op() * leakage_scale_;
  return true;
}

double SeqSim::leakage_energy_fj_per_cycle() const noexcept {
  double leak = 0.0;
  for (const auto& e : engines_) leak += e->leakage_energy_fj_per_op();
  return leak * leakage_scale_;
}

std::uint64_t SeqSim::golden_output(
    std::span<const std::uint64_t> operands) {
  golden_words_.assign(operands.begin(), operands.end());
  std::uint64_t out = 0;
  for (std::size_t k = 0; k < seq_.stages.size(); ++k) {
    const Netlist& nl = seq_.stages[k].netlist;
    if (k > 0) golden_words_ = split_bank_word(out, stage_widths_[k]);
    input_buf_.assign(nl.primary_inputs().size(), 0);
    pins_[k].fill_inputs(golden_words_, input_buf_.data());
    out = pins_[k].gather_output(
        pack_word(evaluate_logic(nl, input_buf_), nl.primary_outputs()));
  }
  return out;
}

double SeqSim::worst_stage_op_error_rate() const {
  double worst = 0.0;
  for (const DoubleSamplingMonitor& m : monitors_)
    worst = std::max(worst, m.window_op_error_rate());
  return worst;
}

void SeqSim::reset_monitor_windows() {
  for (DoubleSamplingMonitor& m : monitors_) m.reset_window();
}

SeqCycleResult SeqSim::step_cycle(std::span<const std::uint64_t> operands) {
  VOSIM_EXPECTS(operands.size() == seq_.num_operands());
  const std::size_t stages = engines_.size();

  // 1. Launch edge — all banks latch simultaneously: bank k takes stage
  // k-1's sample from the previous capture edge, the input bank takes
  // the new operands.
  for (std::size_t k = stages; k-- > 1;)
    bank_[k] = split_bank_word(stage_sampled_[k - 1], stage_widths_[k]);
  bank_[0].assign(operands.begin(), operands.end());
  golden_.push_back(golden_output(operands));

  SeqCycleResult r;
  r.energy_fj = clock_energy_fj_;
  SeqCycleTrace trace;
  if (tracing_) {
    trace.bank_words.reserve(stages + 1);
    for (std::size_t k = 0; k < stages; ++k)
      trace.bank_words.push_back(
          pack_bank_word(bank_[k], stage_widths_[k]));
  }

  // 2. + 3. One clock period per stage, capture at Tclk − setup, and
  // Razor shadow comparison against the stage's functional result.
  for (std::size_t k = 0; k < stages; ++k) {
    const Netlist& nl = seq_.stages[k].netlist;
    input_buf_.assign(nl.primary_inputs().size(), 0);
    pins_[k].fill_inputs(bank_[k], input_buf_.data());
    const StepResult st = engines_[k]->step_cycle(input_buf_);
    const std::uint64_t sampled = pins_[k].gather_output(st.sampled_outputs);
    const std::uint64_t shadow = pins_[k].gather_output(st.settled_outputs);
    stage_sampled_[k] = sampled;
    monitors_[k].observe(sampled, shadow);
    if (sampled != shadow) r.razor_flags |= 1u << k;
    r.energy_fj += st.window_energy_fj + stage_leak_fj_[k];
    r.max_settle_ps = std::max(r.max_settle_ps, st.settle_time_ps);
    if (tracing_) {
      TraceRecorder& rec = recorders_[k];
      trace.stage_initial.emplace_back(rec.initial_values().begin(),
                                       rec.initial_values().end());
      trace.stage_events.push_back(rec.take_trace());
    }
  }

  r.captured = stage_sampled_[stages - 1];
  if (golden_.size() == latency_cycles()) {
    r.expected = golden_.front();
    golden_.pop_front();
    r.output_valid = true;
  }
  if (tracing_) {
    trace.bank_words.push_back(r.captured);
    traces_.push_back(std::move(trace));
  }
  ++cycles_;
  return r;
}

SeqCycleResult SeqSim::step_cycle(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t ops[2] = {a, b};
  return step_cycle(std::span<const std::uint64_t>(ops, 2));
}

void SeqSim::golden_output_batch(std::span<const std::uint64_t> operands,
                                 std::size_t count, std::uint64_t* out) {
  VOSIM_EXPECTS(count >= 1 && count <= lanes::kWordLanes);
  const std::size_t nops = seq_.num_operands();
  // `out` carries the per-cycle bus word between stages: after stage k
  // it holds stage k's golden output for every cycle of the chunk
  // (the golden composition is zero-latency within a cycle). Operand
  // bits scatter straight into per-PI lane words through the
  // precomputed slot maps — no per-cycle split/fill round-trip — and
  // each out[c] gathers through stage_po_net_ (bit-identical: the same
  // slot composition fill_inputs/gather_output would apply).
  for (std::size_t k = 0; k < seq_.stages.size(); ++k) {
    const Netlist& nl = seq_.stages[k].netlist;
    const std::size_t npis = nl.primary_inputs().size();
    golden_pi_words_.assign(npis, 0);
    if (k == 0) {
      for (std::size_t c = 0; c < count; ++c)
        for (std::size_t b = 0; b < nops; ++b) {
          const std::uint64_t op = operands[c * nops + b];
          const auto slots = pins_[0].input_slots(b);
          for (std::size_t i = 0; i < slots.size(); ++i)
            golden_pi_words_[slots[i]] |=
                ((op >> i) & 1ULL) << c;
        }
    } else {
      const auto& bs = bank_slot_[k];
      for (std::size_t c = 0; c < count; ++c) {
        const std::uint64_t w = out[c];
        for (std::size_t j = 0; j < bs.size(); ++j)
          golden_pi_words_[bs[j]] |= ((w >> j) & 1ULL) << c;
      }
    }
    golden_values_.resize(nl.num_nets());
    evaluate_logic_packed(nl, golden_pi_words_, golden_values_);
    const auto& pn = stage_po_net_[k];
    for (std::size_t c = 0; c < count; ++c) {
      std::uint64_t o = 0;
      for (std::size_t i = 0; i < pn.size(); ++i)
        o |= ((golden_values_[pn[i]] >> c) & 1ULL) << i;
      out[c] = o;
    }
  }
}

void SeqSim::step_cycle_batch(std::span<const std::uint64_t> operands,
                              std::size_t count,
                              std::span<SeqCycleResult> results) {
  const std::size_t nops = seq_.num_operands();
  VOSIM_EXPECTS(operands.size() == count * nops);
  VOSIM_EXPECTS(results.size() >= count);
  if (tracing_) {
    // Per-cycle trace collection needs the scalar path.
    for (std::size_t c = 0; c < count; ++c)
      results[c] = step_cycle(operands.subspan(c * nops, nops));
    return;
  }
  const std::size_t stages = engines_.size();
  // Chunk at the engines' native pass width (64 for the event backend
  // and the 64-lane levelized engine, 256/512 for the wide levelized
  // instantiations) so every packed pass runs full. The golden
  // reference composition stays on 64-bit lane words
  // (evaluate_logic_packed), so it walks a wide chunk in kWordLanes
  // sub-chunks.
  const std::size_t pass =
      std::max(lanes::kWordLanes, engines_[0]->lanes_per_pass());
  std::size_t done = 0;
  while (done < count) {
    const std::size_t chunk = std::min(pass, count - done);
    batch_golden_.resize(chunk);
    for (std::size_t g0 = 0; g0 < chunk; g0 += lanes::kWordLanes) {
      const std::size_t gsub = std::min(lanes::kWordLanes, chunk - g0);
      golden_output_batch(
          operands.subspan((done + g0) * nops, gsub * nops), gsub,
          batch_golden_.data() + g0);
    }

    // Stage by stage: stage k's cycle-c bank latches stage k-1's sample
    // from cycle c-1 (cycle 0 latches the carried stage_sampled_), so a
    // full chunk of stage k-1 samples — shifted by one cycle — is
    // exactly stage k's operand stream for the whole chunk.
    batch_results_.resize(stages * chunk);
    batch_sampled_w_.resize(stages * chunk);
    batch_shadow_w_.resize(stages * chunk);
    for (std::size_t k = 0; k < stages; ++k) {
      const std::size_t npis =
          seq_.stages[k].netlist.primary_inputs().size();
      batch_inputs_.assign(chunk * npis, 0);
      // Direct bit scatter through the precomputed slot maps — the
      // same slots fill_inputs would write, without the per-cycle
      // split_bank_word allocation.
      if (k == 0) {
        for (std::size_t c = 0; c < chunk; ++c)
          for (std::size_t b = 0; b < nops; ++b) {
            const std::uint64_t op = operands[(done + c) * nops + b];
            const auto slots = pins_[0].input_slots(b);
            VOSIM_EXPECTS(
                (op & ~mask_n(static_cast<int>(slots.size()))) == 0);
            for (std::size_t i = 0; i < slots.size(); ++i)
              batch_inputs_[c * npis + slots[i]] =
                  static_cast<std::uint8_t>((op >> i) & 1ULL);
          }
      } else {
        const auto& bs = bank_slot_[k];
        for (std::size_t c = 0; c < chunk; ++c) {
          const std::uint64_t prev =
              c == 0 ? stage_sampled_[k - 1]
                     : batch_sampled_w_[(k - 1) * chunk + (c - 1)];
          std::uint8_t* in = &batch_inputs_[c * npis];
          for (std::size_t j = 0; j < bs.size(); ++j)
            in[bs[j]] = static_cast<std::uint8_t>((prev >> j) & 1ULL);
        }
      }
      engines_[k]->step_cycle_batch(
          batch_inputs_, chunk,
          std::span<StepResult>(&batch_results_[k * chunk], chunk));
      for (std::size_t c = 0; c < chunk; ++c) {
        const StepResult& st = batch_results_[k * chunk + c];
        batch_sampled_w_[k * chunk + c] =
            pins_[k].gather_output(st.sampled_outputs);
        batch_shadow_w_[k * chunk + c] =
            pins_[k].gather_output(st.settled_outputs);
      }
    }

    // Per-cycle composition, in the scalar call order (energy terms
    // added stage by stage, monitors fed cycle-ascending, golden queue
    // pushed and popped once per cycle).
    for (std::size_t c = 0; c < chunk; ++c) {
      SeqCycleResult& r = results[done + c];
      r = SeqCycleResult{};
      r.energy_fj = clock_energy_fj_;
      for (std::size_t k = 0; k < stages; ++k) {
        const StepResult& st = batch_results_[k * chunk + c];
        const std::uint64_t diff = batch_sampled_w_[k * chunk + c] ^
                                   batch_shadow_w_[k * chunk + c];
        monitors_[k].record_word(diff);
        if (diff != 0) r.razor_flags |= 1u << k;
        r.energy_fj += st.window_energy_fj + stage_leak_fj_[k];
        r.max_settle_ps = std::max(r.max_settle_ps, st.settle_time_ps);
      }
      r.captured = batch_sampled_w_[(stages - 1) * chunk + c];
      golden_.push_back(batch_golden_[c]);
      if (golden_.size() == latency_cycles()) {
        r.expected = golden_.front();
        golden_.pop_front();
        r.output_valid = true;
      }
      ++cycles_;
    }
    for (std::size_t k = 0; k < stages; ++k)
      stage_sampled_[k] = batch_sampled_w_[k * chunk + (chunk - 1)];
    done += chunk;
  }
}

}  // namespace vosim
